#include "workload/tpch.h"

#include <cmath>

#include "common/random.h"

namespace vdb::workload {

namespace {

using engine::Column;
using engine::Table;
using engine::TablePtr;

const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "HOUSEHOLD", "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP",
                            "TRUCK"};
const char* kTypes[] = {"ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL",
                        "STANDARD"};
const char* kFinish[] = {"ANODIZED", "BRUSHED", "BURNISHED", "PLATED",
                         "POLISHED"};
const char* kReturnFlags[] = {"A", "N", "R"};

/// Random yyyymmdd date between 1992-01-01 and 1998-08-02 (TPC-H range).
int64_t RandomDate(Rng* rng) {
  int year = static_cast<int>(1992 + rng->NextBounded(7));
  int month = static_cast<int>(1 + rng->NextBounded(12));
  int day = static_cast<int>(1 + rng->NextBounded(28));
  return year * 10000 + month * 100 + day;
}

int64_t AddDays(int64_t date, int64_t days) {
  // Approximate day arithmetic adequate for synthetic data: carry within a
  // 28-day month model, matching RandomDate's domain.
  int64_t y = date / 10000, m = (date / 100) % 100, d = date % 100 + days;
  while (d > 28) {
    d -= 28;
    if (++m > 12) {
      m = 1;
      ++y;
    }
  }
  return y * 10000 + m * 100 + d;
}

}  // namespace

Status GenerateTpch(engine::Database* db, const TpchConfig& cfg) {
  Rng rng(cfg.seed);

  // ---- region / nation -----------------------------------------------------
  {
    auto region = std::make_shared<Table>();
    region->AddColumn("r_regionkey", TypeId::kInt64);
    region->AddColumn("r_name", TypeId::kString);
    for (int64_t i = 0; i < 5; ++i) {
      region->AppendRow({Value::Int(i), Value::String(kRegions[i])});
    }
    VDB_RETURN_IF_ERROR(db->RegisterTable("region", region));

    auto nation = std::make_shared<Table>();
    nation->AddColumn("n_nationkey", TypeId::kInt64);
    nation->AddColumn("n_name", TypeId::kString);
    nation->AddColumn("n_regionkey", TypeId::kInt64);
    for (int64_t i = 0; i < 25; ++i) {
      nation->AppendRow(
          {Value::Int(i), Value::String(kNations[i]), Value::Int(i % 5)});
    }
    VDB_RETURN_IF_ERROR(db->RegisterTable("nation", nation));
  }

  // ---- supplier --------------------------------------------------------------
  {
    auto supplier = std::make_shared<Table>();
    supplier->AddColumn("s_suppkey", TypeId::kInt64);
    supplier->AddColumn("s_name", TypeId::kString);
    supplier->AddColumn("s_nationkey", TypeId::kInt64);
    supplier->AddColumn("s_acctbal", TypeId::kDouble);
    for (int64_t i = 1; i <= cfg.suppliers(); ++i) {
      supplier->AppendRow({Value::Int(i),
                           Value::String("Supplier#" + std::to_string(i)),
                           Value::Int(static_cast<int64_t>(rng.NextBounded(25))),
                           Value::Double(-999.99 + rng.NextDouble() * 10999.98)});
    }
    VDB_RETURN_IF_ERROR(db->RegisterTable("supplier", supplier));
  }

  // ---- customer --------------------------------------------------------------
  {
    auto customer = std::make_shared<Table>();
    customer->AddColumn("c_custkey", TypeId::kInt64);
    customer->AddColumn("c_name", TypeId::kString);
    customer->AddColumn("c_nationkey", TypeId::kInt64);
    customer->AddColumn("c_mktsegment", TypeId::kString);
    customer->AddColumn("c_acctbal", TypeId::kDouble);
    for (int64_t i = 1; i <= cfg.customers(); ++i) {
      customer->AppendRow(
          {Value::Int(i), Value::String("Customer#" + std::to_string(i)),
           Value::Int(static_cast<int64_t>(rng.NextBounded(25))),
           Value::String(kSegments[rng.NextBounded(5)]),
           Value::Double(-999.99 + rng.NextDouble() * 10999.98)});
    }
    VDB_RETURN_IF_ERROR(db->RegisterTable("customer", customer));
  }

  // ---- part / partsupp --------------------------------------------------------
  {
    auto part = std::make_shared<Table>();
    part->AddColumn("p_partkey", TypeId::kInt64);
    part->AddColumn("p_name", TypeId::kString);
    part->AddColumn("p_brand", TypeId::kString);
    part->AddColumn("p_type", TypeId::kString);
    part->AddColumn("p_size", TypeId::kInt64);
    part->AddColumn("p_retailprice", TypeId::kDouble);
    for (int64_t i = 1; i <= cfg.parts(); ++i) {
      std::string brand = "Brand#" + std::to_string(1 + rng.NextBounded(5)) +
                          std::to_string(1 + rng.NextBounded(5));
      std::string type = std::string(kTypes[rng.NextBounded(6)]) + " " +
                         kFinish[rng.NextBounded(5)];
      part->AppendRow({Value::Int(i),
                       Value::String("part." + std::to_string(i)),
                       Value::String(brand), Value::String(type),
                       Value::Int(static_cast<int64_t>(1 + rng.NextBounded(50))),
                       Value::Double(900.0 + static_cast<double>(i % 1000) +
                                     rng.NextDouble())});
    }
    VDB_RETURN_IF_ERROR(db->RegisterTable("part", part));

    auto partsupp = std::make_shared<Table>();
    partsupp->AddColumn("ps_partkey", TypeId::kInt64);
    partsupp->AddColumn("ps_suppkey", TypeId::kInt64);
    partsupp->AddColumn("ps_availqty", TypeId::kInt64);
    partsupp->AddColumn("ps_supplycost", TypeId::kDouble);
    for (int64_t i = 1; i <= cfg.parts(); ++i) {
      for (int j = 0; j < 4; ++j) {
        partsupp->AppendRow(
            {Value::Int(i),
             Value::Int(static_cast<int64_t>(1 + rng.NextBounded(
                            static_cast<uint64_t>(cfg.suppliers())))),
             Value::Int(static_cast<int64_t>(1 + rng.NextBounded(9999))),
             Value::Double(1.0 + rng.NextDouble() * 999.0)});
      }
    }
    VDB_RETURN_IF_ERROR(db->RegisterTable("partsupp", partsupp));
  }

  // ---- orders / lineitem ------------------------------------------------------
  {
    auto orders = std::make_shared<Table>();
    orders->AddColumn("o_orderkey", TypeId::kInt64);
    orders->AddColumn("o_custkey", TypeId::kInt64);
    orders->AddColumn("o_orderstatus", TypeId::kString);
    orders->AddColumn("o_totalprice", TypeId::kDouble);
    orders->AddColumn("o_orderdate", TypeId::kInt64);
    orders->AddColumn("o_orderpriority", TypeId::kString);

    auto lineitem = std::make_shared<Table>();
    lineitem->AddColumn("l_orderkey", TypeId::kInt64);
    lineitem->AddColumn("l_partkey", TypeId::kInt64);
    lineitem->AddColumn("l_suppkey", TypeId::kInt64);
    lineitem->AddColumn("l_linenumber", TypeId::kInt64);
    lineitem->AddColumn("l_quantity", TypeId::kInt64);
    lineitem->AddColumn("l_extendedprice", TypeId::kDouble);
    lineitem->AddColumn("l_discount", TypeId::kDouble);
    lineitem->AddColumn("l_tax", TypeId::kDouble);
    lineitem->AddColumn("l_returnflag", TypeId::kString);
    lineitem->AddColumn("l_linestatus", TypeId::kString);
    lineitem->AddColumn("l_shipdate", TypeId::kInt64);
    lineitem->AddColumn("l_receiptdate", TypeId::kInt64);
    lineitem->AddColumn("l_shipmode", TypeId::kString);

    for (int64_t o = 1; o <= cfg.orders(); ++o) {
      int64_t odate = RandomDate(&rng);
      int nlines = static_cast<int>(1 + rng.NextBounded(7));
      double total = 0.0;
      for (int ln = 1; ln <= nlines; ++ln) {
        int64_t qty = static_cast<int64_t>(1 + rng.NextBounded(50));
        double price = (90000.0 +
                        static_cast<double>(rng.NextBounded(100000))) /
                       100.0 *
                       static_cast<double>(qty) / 10.0;
        double discount = static_cast<double>(rng.NextBounded(11)) / 100.0;
        int64_t shipdate =
            AddDays(odate, static_cast<int64_t>(1 + rng.NextBounded(120)));
        lineitem->AppendRow(
            {Value::Int(o),
             Value::Int(static_cast<int64_t>(
                 1 + rng.NextBounded(static_cast<uint64_t>(cfg.parts())))),
             Value::Int(static_cast<int64_t>(
                 1 + rng.NextBounded(static_cast<uint64_t>(cfg.suppliers())))),
             Value::Int(ln), Value::Int(qty), Value::Double(price),
             Value::Double(discount),
             Value::Double(static_cast<double>(rng.NextBounded(9)) / 100.0),
             Value::String(kReturnFlags[rng.NextBounded(3)]),
             Value::String(shipdate < 19950617 ? "F" : "O"),
             Value::Int(shipdate),
             Value::Int(AddDays(
                 shipdate, static_cast<int64_t>(1 + rng.NextBounded(30)))),
             Value::String(kShipModes[rng.NextBounded(7)])});
        total += price * (1.0 - discount);
      }
      orders->AppendRow(
          {Value::Int(o),
           Value::Int(static_cast<int64_t>(
               1 + rng.NextBounded(static_cast<uint64_t>(cfg.customers())))),
           Value::String(odate < 19950617 ? "F" : "O"), Value::Double(total),
           Value::Int(odate), Value::String(kPriorities[rng.NextBounded(5)])});
    }
    VDB_RETURN_IF_ERROR(db->RegisterTable("orders", orders));
    VDB_RETURN_IF_ERROR(db->RegisterTable("lineitem", lineitem));
  }
  return Status::Ok();
}

}  // namespace vdb::workload
