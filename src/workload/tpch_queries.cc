#include "workload/queries.h"

namespace vdb::workload {

std::vector<WorkloadQuery> TpchQueries() {
  std::vector<WorkloadQuery> qs;
  auto add = [&](const char* id, const char* sql, bool pass = false) {
    qs.push_back(WorkloadQuery{id, sql, pass});
  };

  add("tq-1",
      "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty,"
      " sum(l_extendedprice) as sum_base_price,"
      " sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,"
      " avg(l_quantity) as avg_qty, avg(l_extendedprice) as avg_price,"
      " avg(l_discount) as avg_disc, count(*) as count_order"
      " from lineitem where l_shipdate <= 19980902"
      " group by l_returnflag, l_linestatus"
      " order by l_returnflag, l_linestatus");

  // Grouping by order key: extreme cardinality, AQP infeasible (paper: 1.0x).
  add("tq-3",
      "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue"
      " from lineitem inner join orders on l_orderkey = o_orderkey"
      " where o_orderdate < 19950315 group by l_orderkey"
      " order by revenue desc limit 10",
      /*pass=*/true);

  add("tq-5",
      "select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue"
      " from lineitem"
      " inner join orders on l_orderkey = o_orderkey"
      " inner join customer on o_custkey = c_custkey"
      " inner join nation on c_nationkey = n_nationkey"
      " where o_orderdate >= 19940101 and o_orderdate < 19950101"
      " group by n_name order by revenue desc");

  add("tq-6",
      "select sum(l_extendedprice * l_discount) as revenue from lineitem"
      " where l_shipdate >= 19940101 and l_shipdate < 19950101"
      " and l_discount between 0.05 and 0.07 and l_quantity < 24");

  add("tq-7",
      "select n_name, year(l_shipdate) as l_year,"
      " sum(l_extendedprice * (1 - l_discount)) as revenue"
      " from lineitem"
      " inner join orders on l_orderkey = o_orderkey"
      " inner join customer on o_custkey = c_custkey"
      " inner join nation on c_nationkey = n_nationkey"
      " where l_shipdate >= 19950101 and l_shipdate <= 19961231"
      " group by n_name, year(l_shipdate)");

  // Grouping by part key: extreme cardinality, AQP infeasible.
  add("tq-8",
      "select l_partkey, sum(l_extendedprice * (1 - l_discount)) as revenue"
      " from lineitem inner join part on l_partkey = p_partkey"
      " group by l_partkey order by revenue desc limit 10",
      /*pass=*/true);

  add("tq-9",
      "select n_name, year(o_orderdate) as o_year,"
      " sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity)"
      " as profit"
      " from lineitem"
      " inner join orders on l_orderkey = o_orderkey"
      " inner join partsupp on ps_partkey = l_partkey and"
      "   ps_suppkey = l_suppkey"
      " inner join supplier on l_suppkey = s_suppkey"
      " inner join nation on s_nationkey = n_nationkey"
      " group by n_name, year(o_orderdate)");

  // Grouping by customer key: extreme cardinality, AQP infeasible.
  add("tq-10",
      "select c_custkey, sum(l_extendedprice * (1 - l_discount)) as revenue"
      " from lineitem"
      " inner join orders on l_orderkey = o_orderkey"
      " inner join customer on o_custkey = c_custkey"
      " where l_returnflag = 'R' group by c_custkey"
      " order by revenue desc limit 20",
      /*pass=*/true);

  add("tq-11",
      "select n_name, sum(ps_supplycost * ps_availqty) as value"
      " from partsupp"
      " inner join supplier on ps_suppkey = s_suppkey"
      " inner join nation on s_nationkey = n_nationkey"
      " group by n_name order by value desc");

  add("tq-12",
      "select l_shipmode,"
      " sum(case when o_orderpriority = '1-URGENT' or"
      " o_orderpriority = '2-HIGH' then 1 else 0 end) as high_line_count,"
      " sum(case when o_orderpriority <> '1-URGENT' and"
      " o_orderpriority <> '2-HIGH' then 1 else 0 end) as low_line_count"
      " from orders inner join lineitem on o_orderkey = l_orderkey"
      " where l_receiptdate >= 19940101 and l_receiptdate < 19950101"
      " group by l_shipmode order by l_shipmode");

  // Nested aggregation (paper §5.2): distribution of orders per customer.
  add("tq-13",
      "select c_count, count(*) as custdist from"
      " (select o_custkey, count(*) as c_count from orders"
      "  group by o_custkey) as c_orders"
      " group by c_count order by custdist desc limit 20");

  add("tq-14",
      "select sum(case when p_type like 'PROMO%' then"
      " l_extendedprice * (1 - l_discount) else 0.0 end) /"
      " sum(l_extendedprice * (1 - l_discount)) as promo_revenue"
      " from lineitem inner join part on l_partkey = p_partkey"
      " where l_shipdate >= 19950901 and l_shipdate < 19951001");

  // Grouping by supplier key: too few sample tuples per group, infeasible.
  add("tq-15",
      "select l_suppkey, sum(l_extendedprice * (1 - l_discount)) as revenue"
      " from lineitem where l_shipdate >= 19960101 and l_shipdate < 19960401"
      " group by l_suppkey order by revenue desc limit 10",
      /*pass=*/true);

  add("tq-16",
      "select p_brand, p_size, count(distinct ps_suppkey) as supplier_cnt"
      " from partsupp inner join part on p_partkey = ps_partkey"
      " where p_brand <> 'Brand#45' group by p_brand, p_size"
      " order by supplier_cnt desc, p_brand, p_size limit 40");

  // Correlated comparison subquery -> flattened into a join (paper §2.2).
  add("tq-17",
      "select sum(l_extendedprice) / 7.0 as avg_yearly"
      " from lineitem inner join part on p_partkey = l_partkey"
      " where p_brand = 'Brand#23' and l_quantity <"
      " (select avg(l_quantity) from lineitem where l_partkey = part.p_partkey)");

  add("tq-18",
      "select c_mktsegment, avg(o_totalprice) as avg_price,"
      " count(*) as num_orders"
      " from orders inner join customer on o_custkey = c_custkey"
      " where o_totalprice > 30000 group by c_mktsegment"
      " order by avg_price desc");

  add("tq-19",
      "select sum(l_extendedprice * (1 - l_discount)) as revenue"
      " from lineitem inner join part on p_partkey = l_partkey"
      " where (p_brand = 'Brand#12' and l_quantity between 1 and 11)"
      " or (p_brand = 'Brand#23' and l_quantity between 10 and 20)"
      " or (p_brand = 'Brand#34' and l_quantity between 20 and 30)");

  // EXISTS: unsupported by VerdictDB (passes through, as in the paper).
  add("tq-20",
      "select count(*) as waiting_suppliers from supplier"
      " inner join nation on s_nationkey = n_nationkey"
      " where n_name = 'CANADA' and exists"
      " (select 1 from region where r_name = 'AMERICA')",
      /*pass=*/true);

  return qs;
}

}  // namespace vdb::workload
