// Synthetic dataset of §6.5: a value column with mean 10.0 and standard
// deviation 10.0, a uniform column for selectivity control, and
// low-cardinality group columns.

#ifndef VDB_WORKLOAD_SYNTHETIC_H_
#define VDB_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"

namespace vdb::workload {

/// Registers table `name` with columns: id BIGINT, value DOUBLE (N(10,10)),
/// u DOUBLE (uniform [0,1), for `where u < selectivity` predicates),
/// g10 BIGINT (10 groups), g100 BIGINT (100 groups).
Status GenerateSynthetic(engine::Database* db, const std::string& name,
                         int64_t rows, uint64_t seed = 7);

/// In-memory N(10,10) draws for the estimator studies (Figures 8/12/13/14).
std::vector<double> SyntheticValues(int64_t n, uint64_t seed = 7);

}  // namespace vdb::workload

#endif  // VDB_WORKLOAD_SYNTHETIC_H_
