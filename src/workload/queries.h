// The 33-query evaluation workload of §6.2: 18 TPC-H-derived queries
// (tq-1..tq-20, minus tq-2/tq-4 which have no mean-like aggregates) and 15
// Instacart-style micro-benchmark queries (iq-1..iq-15). Queries are adapted
// to the engine's SQL dialect; tq-3/8/10/15 intentionally group on
// high-cardinality keys (AQP infeasible, as in the paper) and tq-20 uses an
// unsupported construct (passes through).

#ifndef VDB_WORKLOAD_QUERIES_H_
#define VDB_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

namespace vdb::workload {

struct WorkloadQuery {
  std::string id;   // "tq-1", "iq-7", ...
  std::string sql;
  /// True when the paper also observes no speedup (AQP infeasible or
  /// unsupported); used by tests to assert planner behaviour.
  bool expect_passthrough = false;
};

/// TPC-H-derived queries (18).
std::vector<WorkloadQuery> TpchQueries();

/// Instacart-style micro-benchmark queries (15).
std::vector<WorkloadQuery> InstaQueries();

}  // namespace vdb::workload

#endif  // VDB_WORKLOAD_QUERIES_H_
