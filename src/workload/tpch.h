// Scaled-down TPC-H-style dataset generator. Schemas follow the benchmark;
// dates are yyyymmdd integers; row counts scale linearly with `scale`
// (scale = 1.0 gives 600K lineitem rows, standing in for the paper's 500 GB
// testbed at laptop scale).

#ifndef VDB_WORKLOAD_TPCH_H_
#define VDB_WORKLOAD_TPCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"

namespace vdb::workload {

struct TpchConfig {
  double scale = 0.25;
  uint64_t seed = 20180610;  // SIGMOD'18 opening day

  int64_t orders() const { return static_cast<int64_t>(150000 * scale); }
  int64_t customers() const { return static_cast<int64_t>(15000 * scale); }
  int64_t parts() const { return static_cast<int64_t>(20000 * scale); }
  int64_t suppliers() const {
    return std::max<int64_t>(40, static_cast<int64_t>(1000 * scale));
  }
};

/// Creates region, nation, supplier, customer, part, partsupp, orders and
/// lineitem tables in `db`.
Status GenerateTpch(engine::Database* db, const TpchConfig& config = {});

}  // namespace vdb::workload

#endif  // VDB_WORKLOAD_TPCH_H_
