#include "workload/synthetic.h"

#include "common/random.h"

namespace vdb::workload {

Status GenerateSynthetic(engine::Database* db, const std::string& name,
                         int64_t rows, uint64_t seed) {
  Rng rng(seed);
  auto t = std::make_shared<engine::Table>();
  t->AddColumn("id", TypeId::kInt64);
  t->AddColumn("value", TypeId::kDouble);
  t->AddColumn("u", TypeId::kDouble);
  t->AddColumn("g10", TypeId::kInt64);
  t->AddColumn("g100", TypeId::kInt64);
  for (int64_t i = 0; i < rows; ++i) {
    t->AppendRow({Value::Int(i),
                  Value::Double(10.0 + 10.0 * rng.NextGaussian()),
                  Value::Double(rng.NextDouble()),
                  Value::Int(static_cast<int64_t>(rng.NextBounded(10))),
                  Value::Int(static_cast<int64_t>(rng.NextBounded(100)))});
  }
  return db->RegisterTable(name, t);
}

std::vector<double> SyntheticValues(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(static_cast<size_t>(n));
  for (auto& x : xs) x = 10.0 + 10.0 * rng.NextGaussian();
  return xs;
}

}  // namespace vdb::workload
