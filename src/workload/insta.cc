#include "workload/insta.h"

#include "common/random.h"

namespace vdb::workload {

namespace {
using engine::Table;
}  // namespace

Status GenerateInsta(engine::Database* db, const InstaConfig& cfg) {
  Rng rng(cfg.seed);

  {
    auto departments = std::make_shared<Table>();
    departments->AddColumn("department_id", TypeId::kInt64);
    departments->AddColumn("department", TypeId::kString);
    for (int64_t i = 1; i <= cfg.departments(); ++i) {
      departments->AppendRow(
          {Value::Int(i), Value::String("dept." + std::to_string(i))});
    }
    VDB_RETURN_IF_ERROR(db->RegisterTable("departments", departments));

    auto aisles = std::make_shared<Table>();
    aisles->AddColumn("aisle_id", TypeId::kInt64);
    aisles->AddColumn("aisle", TypeId::kString);
    for (int64_t i = 1; i <= cfg.aisles(); ++i) {
      aisles->AppendRow(
          {Value::Int(i), Value::String("aisle." + std::to_string(i))});
    }
    VDB_RETURN_IF_ERROR(db->RegisterTable("aisles", aisles));
  }

  {
    auto products = std::make_shared<Table>();
    products->AddColumn("product_id", TypeId::kInt64);
    products->AddColumn("aisle_id", TypeId::kInt64);
    products->AddColumn("department_id", TypeId::kInt64);
    products->AddColumn("unit_price", TypeId::kDouble);
    for (int64_t i = 1; i <= cfg.products(); ++i) {
      products->AppendRow(
          {Value::Int(i),
           Value::Int(static_cast<int64_t>(
               1 + rng.NextBounded(static_cast<uint64_t>(cfg.aisles())))),
           Value::Int(static_cast<int64_t>(
               1 + rng.NextBounded(static_cast<uint64_t>(cfg.departments())))),
           Value::Double(0.5 + rng.NextDouble() * 49.5)});
    }
    VDB_RETURN_IF_ERROR(db->RegisterTable("products", products));
  }

  {
    auto orders = std::make_shared<Table>();
    orders->AddColumn("order_id", TypeId::kInt64);
    orders->AddColumn("user_id", TypeId::kInt64);
    orders->AddColumn("order_dow", TypeId::kInt64);
    orders->AddColumn("order_hour", TypeId::kInt64);
    orders->AddColumn("days_since_prior", TypeId::kInt64);

    auto order_products = std::make_shared<Table>();
    order_products->AddColumn("order_id", TypeId::kInt64);
    order_products->AddColumn("product_id", TypeId::kInt64);
    order_products->AddColumn("add_to_cart_order", TypeId::kInt64);
    order_products->AddColumn("reordered", TypeId::kInt64);
    order_products->AddColumn("quantity", TypeId::kInt64);
    order_products->AddColumn("price", TypeId::kDouble);

    for (int64_t o = 1; o <= cfg.orders(); ++o) {
      orders->AppendRow(
          {Value::Int(o),
           Value::Int(static_cast<int64_t>(
               1 + rng.NextBounded(static_cast<uint64_t>(cfg.users())))),
           Value::Int(static_cast<int64_t>(rng.NextBounded(7))),
           Value::Int(static_cast<int64_t>(rng.NextBounded(24))),
           Value::Int(static_cast<int64_t>(rng.NextBounded(31)))});
      // Basket sizes skew small: 1..12 items.
      int items = static_cast<int>(1 + rng.NextBounded(12));
      for (int k = 1; k <= items; ++k) {
        int64_t qty = static_cast<int64_t>(1 + rng.NextBounded(5));
        order_products->AppendRow(
            {Value::Int(o),
             Value::Int(static_cast<int64_t>(
                 1 + rng.NextBounded(static_cast<uint64_t>(cfg.products())))),
             Value::Int(k),
             Value::Int(static_cast<int64_t>(rng.NextBounded(2))),
             Value::Int(qty),
             Value::Double((0.5 + rng.NextDouble() * 49.5) *
                           static_cast<double>(qty))});
      }
    }
    VDB_RETURN_IF_ERROR(db->RegisterTable("orders_insta", orders));
    VDB_RETURN_IF_ERROR(db->RegisterTable("order_products", order_products));
  }
  return Status::Ok();
}

}  // namespace vdb::workload
