// In-memory reference implementations of the error-estimation techniques the
// paper compares (§4, §6.4, §6.5, Appendix B):
//
//   * bootstrap (b resamples with replacement, size n)
//   * consolidated bootstrap (single-pass multiplicity assignment, still
//     O(n*b) work — Agarwal et al. 2014)
//   * traditional subsampling (b subsamples of size ns, without replacement)
//   * variational subsampling (this paper: each tuple in at most one
//     subsample, sizes vary, O(n) total)
//   * closed-form CLT
//
// All operate on a vector of doubles representing the *sample* (size n drawn
// from a population of size N) and estimate a mean-like statistic
// `scale * mean(sample)`: scale = 1 reproduces avg, scale = N reproduces
// count (0/1 indicators) and sum (value column).

#ifndef VDB_ESTIMATOR_ESTIMATORS_H_
#define VDB_ESTIMATOR_ESTIMATORS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace vdb::est {

/// A point estimate with a confidence interval.
struct ErrorEstimate {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  /// Half-width of the interval (hi - lo) / 2; the "error" reported in the
  /// paper's plots.
  double half_width = 0.0;
};

/// Closed-form CLT interval for scale * mean(sample).
ErrorEstimate CltEstimate(const std::vector<double>& sample, double scale,
                          double confidence);

/// Classic bootstrap with b resamples of size n (with replacement).
ErrorEstimate Bootstrap(const std::vector<double>& sample, double scale,
                        int b, double confidence, Rng* rng);

/// Consolidated bootstrap: one pass over the data assigning each tuple a
/// Poisson(1) multiplicity per resample. Identical statistics to Bootstrap;
/// same O(n*b) cost profile as the SQL formulation in the paper.
ErrorEstimate ConsolidatedBootstrap(const std::vector<double>& sample,
                                    double scale, int b, double confidence,
                                    Rng* rng);

/// Traditional subsampling: b subsamples of size ns drawn without
/// replacement; deviations scaled by sqrt(ns / n) (Politis & Romano 1994).
ErrorEstimate TraditionalSubsampling(const std::vector<double>& sample,
                                     double scale, int b, int64_t ns,
                                     double confidence, Rng* rng);

/// Variational subsampling (paper §4.2): one pass assigns each tuple a
/// subsample id in [1, b] (b = n / ns); per-subsample deviations are scaled
/// by sqrt(ns_i) (Theorem 2). ns <= 0 selects the paper's default n^(1/2).
ErrorEstimate VariationalSubsampling(const std::vector<double>& sample,
                                     double scale, int64_t ns,
                                     double confidence, Rng* rng);

}  // namespace vdb::est

#endif  // VDB_ESTIMATOR_ESTIMATORS_H_
