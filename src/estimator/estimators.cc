#include "estimator/estimators.h"

#include <algorithm>
#include <cmath>

#include "common/stats_math.h"

namespace vdb::est {

namespace {

/// Builds the interval [g0 - q_hi * s, g0 - q_lo * s] from deviations
/// dev_j = (ghat_j - g0) (bootstrap/subsampling form; `s` rescales from the
/// resample regime to the sample regime).
ErrorEstimate IntervalFromDeviations(double g0, std::vector<double> devs,
                                     double s, double confidence) {
  std::sort(devs.begin(), devs.end());
  const double alpha = 1.0 - confidence;
  double t_lo = vdb::QuantileSorted(devs, alpha / 2.0);
  double t_hi = vdb::QuantileSorted(devs, 1.0 - alpha / 2.0);
  ErrorEstimate e;
  e.point = g0;
  e.lo = g0 - t_hi * s;
  e.hi = g0 - t_lo * s;
  e.half_width = (e.hi - e.lo) / 2.0;
  return e;
}

}  // namespace

ErrorEstimate CltEstimate(const std::vector<double>& sample, double scale,
                          double confidence) {
  const double n = static_cast<double>(sample.size());
  const double mean = vdb::Mean(sample);
  const double sd = vdb::StdDev(sample);
  const double z = vdb::NormalCriticalValue(confidence);
  ErrorEstimate e;
  e.point = scale * mean;
  const double hw = z * scale * sd / std::sqrt(n);
  e.lo = e.point - hw;
  e.hi = e.point + hw;
  e.half_width = hw;
  return e;
}

ErrorEstimate Bootstrap(const std::vector<double>& sample, double scale,
                        int b, double confidence, Rng* rng) {
  const size_t n = sample.size();
  const size_t nb = static_cast<size_t>(std::max(0, b));
  const double g0 = scale * vdb::Mean(sample);
  std::vector<double> devs(nb);
  for (size_t j = 0; j < nb; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += sample[rng->NextBounded(n)];
    }
    devs[j] = g0 - scale * (sum / static_cast<double>(n));
  }
  return IntervalFromDeviations(g0, std::move(devs), 1.0, confidence);
}

ErrorEstimate ConsolidatedBootstrap(const std::vector<double>& sample,
                                    double scale, int b, double confidence,
                                    Rng* rng) {
  // Single pass over the data; per tuple, draw a Poisson(1) multiplicity for
  // each of the b resamples (multinomial resampling approximation).
  const size_t n = sample.size();
  const size_t nb = static_cast<size_t>(std::max(0, b));
  const double g0 = scale * vdb::Mean(sample);
  std::vector<double> sums(nb, 0.0);
  std::vector<double> counts(nb, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < nb; ++j) {
      // Poisson(1) multiplicity; E[k]=1, so expected resample size is n.
      // Shared inverse-CDF kernel with SQL rand_poisson() (common/random.h),
      // which also removed the old k < 8 truncation of the upper tail.
      int k = PoissonOneFromUniform(rng->NextDouble());
      if (k > 0) {
        sums[j] += static_cast<double>(k) * sample[i];
        counts[j] += static_cast<double>(k);
      }
    }
  }
  std::vector<double> devs(nb);
  for (size_t j = 0; j < nb; ++j) {
    // An empty resample carries no information about the spread: its
    // deviation is 0 (ghat_j = g0), NOT g0 - 0 — the old fallback injected
    // the full point estimate as a spurious outlier deviation.
    devs[j] = counts[j] > 0 ? g0 - scale * (sums[j] / counts[j]) : 0.0;
  }
  return IntervalFromDeviations(g0, std::move(devs), 1.0, confidence);
}

ErrorEstimate TraditionalSubsampling(const std::vector<double>& sample,
                                     double scale, int b, int64_t ns,
                                     double confidence, Rng* rng) {
  const size_t n = sample.size();
  const double g0 = scale * vdb::Mean(sample);
  // Partial Fisher-Yates per subsample: draw ns indices without replacement.
  std::vector<uint32_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
  std::vector<double> devs(static_cast<size_t>(std::max(0, b)));
  const double root = std::sqrt(static_cast<double>(ns));
  for (size_t j = 0; j < devs.size(); ++j) {
    double sum = 0.0;
    for (size_t k = 0; k < static_cast<size_t>(ns); ++k) {
      size_t pick = k + rng->NextBounded(n - k);
      std::swap(idx[k], idx[pick]);
      sum += sample[idx[k]];
    }
    double ghat = scale * (sum / static_cast<double>(ns));
    devs[j] = root * (ghat - g0);
  }
  // Deviations are on the sqrt(ns) scale; map back by 1/sqrt(n).
  return IntervalFromDeviations(g0, std::move(devs),
                                1.0 / std::sqrt(static_cast<double>(n)),
                                confidence);
}

ErrorEstimate VariationalSubsampling(const std::vector<double>& sample,
                                     double scale, int64_t ns,
                                     double confidence, Rng* rng) {
  const size_t n = sample.size();
  if (ns <= 0) {
    ns = std::max<int64_t>(
        1, static_cast<int64_t>(std::sqrt(static_cast<double>(n))));
  }
  const int64_t b =
      std::max<int64_t>(2, static_cast<int64_t>(n) / std::max<int64_t>(1, ns));
  const double g0 = scale * vdb::Mean(sample);
  const size_t nb = static_cast<size_t>(b);

  // Single pass: each tuple joins exactly one of the b subsamples.
  std::vector<double> sums(nb, 0.0);
  std::vector<int64_t> counts(nb, 0);
  for (size_t i = 0; i < n; ++i) {
    uint64_t sid = rng->NextBounded(static_cast<uint64_t>(b));
    sums[sid] += sample[i];
    counts[sid] += 1;
  }
  std::vector<double> devs;
  devs.reserve(nb);
  for (size_t j = 0; j < nb; ++j) {
    if (counts[j] == 0) continue;
    double ghat = scale * (sums[j] / static_cast<double>(counts[j]));
    devs.push_back(std::sqrt(static_cast<double>(counts[j])) * (ghat - g0));
  }
  if (devs.empty()) devs.push_back(0.0);
  return IntervalFromDeviations(g0, std::move(devs),
                                1.0 / std::sqrt(static_cast<double>(n)),
                                confidence);
}

}  // namespace vdb::est
