// Correlated comparison-subquery flattening (paper §2.2).
//
// VerdictDB converts comparison subqueries into joins so the downstream
// rewriter only sees join queries:
//
//   where price > (select avg(price) from order_products
//                  where product = t1.product)
// becomes
//   ... inner join (select product, avg(price) as __vdb_corr0
//                   from order_products group by product) as __vdb_f0
//       on __vdb_f0.product = t1.product
//   where price > __vdb_f0.__vdb_corr0

#ifndef VDB_CORE_FLATTENER_H_
#define VDB_CORE_FLATTENER_H_

#include "common/status.h"
#include "sql/ast.h"

namespace vdb::core {

/// Flattens every correlated comparison subquery in stmt's WHERE clause into
/// a grouped derived table joined on the correlation column. Uncorrelated
/// scalar subqueries are left untouched (the engine evaluates them directly).
/// Returns the number of subqueries flattened.
Result<int> FlattenComparisonSubqueries(sql::SelectStmt* stmt);

}  // namespace vdb::core

#endif  // VDB_CORE_FLATTENER_H_
