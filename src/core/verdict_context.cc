#include "core/verdict_context.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/flattener.h"
#include "core/query_classifier.h"
#include "core/rewriter.h"
#include "core/sample_planner.h"
#include "engine/aggregates.h"
#include "engine/functions.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace vdb::core {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::SelectStmt;

bool ContainsExtreme(const Expr& e) {
  if (e.kind == ExprKind::kFunction && !e.is_window &&
      (e.name == "min" || e.name == "max")) {
    return true;
  }
  for (const auto& a : e.args) {
    if (a && ContainsExtreme(*a)) return true;
  }
  for (const auto& w : e.case_whens) {
    if (ContainsExtreme(*w)) return true;
  }
  for (const auto& t : e.case_thens) {
    if (ContainsExtreme(*t)) return true;
  }
  if (e.case_else && ContainsExtreme(*e.case_else)) return true;
  return false;
}

/// True if the item matches a group-by expression (returned items appear in
/// both halves of a decomposed query).
bool IsGroupItem(const sql::SelectItem& item, const SelectStmt& stmt) {
  std::string text = sql::PrintExpr(*item.expr);
  for (const auto& g : stmt.group_by) {
    if (sql::PrintExpr(*g) == text) return true;
    if (item.expr->kind == ExprKind::kColumnRef &&
        g->kind == ExprKind::kColumnRef && g->name == item.expr->name) {
      return true;
    }
  }
  return false;
}

/// Join conditions often use unqualified columns (`on l_orderkey =
/// o_orderkey`); universe-join detection needs the owning relations, so
/// resolve empty edge qualifiers against the base-table schemas.
void ResolveJoinEdgeAliases(QueryClass* qc, const engine::Catalog& cat) {
  auto owner_of = [&](const std::string& column) -> std::string {
    std::string found;
    for (const auto& r : qc->relations) {
      if (r.is_derived) continue;
      auto t = cat.GetTable(r.base_table);
      if (t && t->ColumnIndex(column) >= 0) {
        if (!found.empty()) return "";  // ambiguous
        found = r.alias;
      }
    }
    return found;
  };
  for (auto& e : qc->join_edges) {
    if (e.left_alias.empty()) e.left_alias = owner_of(e.left_column);
    if (e.right_alias.empty()) e.right_alias = owner_of(e.right_column);
  }
}

std::string RowKey(const engine::ResultSet& rs, size_t row,
                   const std::vector<int>& cols) {
  std::string key;
  for (int c : cols) {
    key += engine::ValueGroupKey(rs.Get(row, static_cast<size_t>(c)));
    key.push_back('\x1f');
  }
  return key;
}

}  // namespace

VerdictContext::VerdictContext(engine::Database* db,
                               driver::EngineKind engine_kind,
                               VerdictOptions options)
    : options_(options),
      conn_(db, engine_kind),
      catalog_(&conn_),
      builder_(&conn_, &catalog_) {
  db->set_num_threads(options_.num_threads);
  // The memory budget is a standing limit, armed from construction so the
  // offline stage (sample builds issued directly on the builder) is governed
  // too; deadlines are per-query and armed in ExecuteApprox.
  guard_.set_memory_budget_bytes(options_.memory_budget_bytes);
  conn_.set_exec_guard(&guard_);
}

Result<engine::ResultSet> VerdictContext::Execute(const std::string& sql,
                                                  ExecInfo* info) {
  auto ans = ExecuteApprox(sql, info);
  if (!ans.ok()) return ans.status();
  return std::move(ans).ValueOrDie().result;
}

Result<ApproxAnswer> VerdictContext::ExecuteApprox(const std::string& sql,
                                                   ExecInfo* info) {
  // Options are mutable between queries; re-sync the engine-side knob so
  // options().num_threads sweeps (benches, tests) take effect per query.
  conn_.database()->set_num_threads(options_.num_threads);
  // Re-arm the governor for this query: clear any stale cancel/accounting,
  // then arm the deadline and budget from the current options. Every
  // statement the query issues over conn_ runs under this one guard.
  guard_.ResetForStatement();
  guard_.set_memory_budget_bytes(options_.memory_budget_bytes);
  guard_.set_deadline_after_ms(options_.timeout_ms);
  conn_.set_exec_guard(&guard_);
  ExecInfo local;
  ExecInfo* ei = info ? info : &local;
  bool handled = false;
  auto approx = TryApproximate(sql, ei, &handled);
  ei->peak_memory_bytes = guard_.peak_reserved_bytes();
  if (handled) return approx;
  if (!approx.ok() && approx.status().code() != StatusCode::kOk) {
    // TryApproximate only returns an error when it also sets handled; fall
    // through to passthrough otherwise.
  }
  // Passthrough: unsupported queries run unchanged on the underlying DB —
  // except that correlated comparison subqueries are still flattened, since
  // flattening is semantics-preserving and many engines (including ours)
  // cannot evaluate them natively.
  Result<engine::ResultSet> rs = Status::Internal("unset");
  auto parsed = sql::ParseStatement(sql);
  if (parsed.ok() && parsed.value()->kind == sql::StatementKind::kSelect) {
    (void)FlattenComparisonSubqueries(parsed.value()->select.get());
    rs = conn_.ExecuteAst(*parsed.value());
  } else {
    rs = conn_.Execute(sql);
  }
  if (!rs.ok()) return rs.status();
  ApproxAnswer out;
  out.result = std::move(rs).ValueOrDie();
  out.confidence = options_.confidence;
  ei->peak_memory_bytes = guard_.peak_reserved_bytes();
  return out;
}

Result<ApproxAnswer> VerdictContext::TryApproximate(const std::string& sql,
                                                    ExecInfo* info,
                                                    bool* handled) {
  *handled = false;
  auto parsed = sql::ParseStatement(sql);
  if (!parsed.ok()) {
    info->skip_reason = "parse error (passed through)";
    return Status::InvalidArgument("unparsed");
  }
  auto stmt = std::move(parsed).ValueOrDie();
  if (stmt->kind != sql::StatementKind::kSelect) {
    info->skip_reason = "not a SELECT";
    return Status::InvalidArgument("not select");
  }
  SelectStmt* sel = stmt->select.get();

  // Comparison subqueries -> joins (§2.2) before classification.
  auto flattened = FlattenComparisonSubqueries(sel);
  if (!flattened.ok()) {
    info->skip_reason = "flattening failed";
    return flattened.status();
  }

  QueryClass qc = ClassifyQuery(*sel);
  if (!qc.supported) {
    info->skip_reason = qc.reason;
    return Status::Unsupported(qc.reason);
  }

  // ---- Mixed extreme + mean-like statistics: decompose (paper §2.2) -----
  if (qc.has_extreme) {
    bool decomposable = !sel->having && sel->order_by.empty() &&
                        sel->limit < 0 && !qc.nested_aggregate;
    if (!decomposable) {
      info->skip_reason = "extreme statistics in a non-decomposable query";
      return Status::Unsupported(info->skip_reason);
    }
    return DecomposeAndExecute(*sel, qc, info, handled);
  }

  // ---- Plan samples -------------------------------------------------------
  QueryClass* plan_qc = &qc;
  QueryClass qc_inner;
  const SelectStmt* plan_sel = sel;
  if (qc.nested_aggregate) {
    qc_inner = ClassifyQuery(*qc.relations[0].derived);
    plan_qc = &qc_inner;
    plan_sel = qc.relations[0].derived;
  }
  ResolveJoinEdgeAliases(plan_qc, conn_.database()->catalog());

  std::map<std::string, uint64_t> base_rows;
  for (const auto& r : plan_qc->relations) {
    if (r.is_derived) {
      base_rows[r.alias] = 0;
      continue;
    }
    auto t = conn_.database()->catalog().GetTable(r.base_table);
    if (!t) {
      info->skip_reason = "unknown table: " + r.base_table;
      return Status::NotFound(info->skip_reason);
    }
    base_rows[r.alias] = t->num_rows();
  }

  auto samples = catalog_.SamplesFor("");
  if (!samples.ok()) {
    info->skip_reason = "sample catalog unavailable";
    return samples.status();
  }
  if (samples.value().empty()) {
    info->skip_reason = "no samples prepared";
    return Status::NotFound(info->skip_reason);
  }

  int64_t hint = EstimateGroupCardinality(*plan_sel, *plan_qc,
                                          samples.value());
  SamplePlanner planner(options_, samples.value());
  auto plan = planner.Plan(*plan_qc, base_rows, hint);
  if (!plan.ok()) {
    info->skip_reason = "sample planning failed";
    return plan.status();
  }
  if (!plan.value().UsesSamples()) {
    info->skip_reason = "AQP infeasible (no sample combination fits)";
    return Status::Unsupported(info->skip_reason);
  }

  // ---- Rewrite + execute ---------------------------------------------------
  AqpRewriter rewriter(options_);
  Result<RewriteResult> rewritten =
      qc.nested_aggregate
          ? rewriter.RewriteNested(*sel, qc, qc_inner, plan.value(), hint)
          : rewriter.RewriteFlat(*sel, qc, plan.value());
  if (!rewritten.ok()) {
    info->skip_reason = "rewrite failed: " + rewritten.status().message();
    return rewritten.status();
  }

  sql::Statement rew_stmt;
  rew_stmt.kind = sql::StatementKind::kSelect;
  rew_stmt.select = std::move(rewritten.value().rewritten);
  info->rewritten_sql =
      sql::PrintStatement(rew_stmt, conn_.dialect().print_options);
  info->subsamples = rewritten.value().b;

  auto raw = conn_.ExecuteAst(rew_stmt);
  if (!raw.ok()) {
    info->skip_reason = "rewritten query failed: " + raw.status().message();
    return raw.status();
  }

  AnswerRewriter answerer(options_);
  auto answer = answerer.Rewrite(raw.value(), rewritten.value().columns);
  if (!answer.ok()) {
    info->skip_reason = "answer rewriting failed";
    return answer.status();
  }
  *handled = true;
  info->approximated = true;
  info->max_relative_error = answer.value().max_relative_error;

  // ---- High-level Accuracy Contract (§2.4) --------------------------------
  // Conservative: rows whose relative error could not be measured (NULL
  // stderr from single-subsample groups, near-zero points with real spread)
  // count as contract violations — the contract must never pass vacuously
  // on the measured subset.
  if (options_.min_accuracy > 0.0 &&
      (answer.value().max_relative_error > (1.0 - options_.min_accuracy) ||
       answer.value().unmeasured_rows > 0)) {
    info->exact_rerun = true;
    info->approximated = false;
    auto exact = conn_.Execute(sql);
    if (!exact.ok()) {
      // Graceful degradation: when the exact fallback trips the governor
      // (out of time or budget after the approximate answer is already in
      // hand), serve the approximate answer with its error bounds instead
      // of failing the query. Genuine execution errors still propagate.
      const StatusCode code = exact.status().code();
      if (code == StatusCode::kCancelled ||
          code == StatusCode::kDeadlineExceeded ||
          code == StatusCode::kResourceExhausted) {
        info->approximated = true;
        info->degraded = true;
        info->degradation_note =
            "HAC exact fallback aborted (" + exact.status().message() +
            "); serving the approximate answer with error bounds";
        return answer;
      }
      return exact.status();
    }
    ApproxAnswer out;
    out.result = std::move(exact).ValueOrDie();
    out.confidence = options_.confidence;
    return out;
  }
  return answer;
}

Result<ApproxAnswer> VerdictContext::DecomposeAndExecute(
    const SelectStmt& sel, const QueryClass& /*qc*/, ExecInfo* info,
    bool* handled) {
  // Partition the select items.
  enum class ItemKind { kGroup, kMean, kExtreme };
  std::vector<ItemKind> kinds;
  for (const auto& item : sel.items) {
    if (IsGroupItem(item, sel)) {
      kinds.push_back(ItemKind::kGroup);
    } else if (ContainsExtreme(*item.expr)) {
      kinds.push_back(ItemKind::kExtreme);
    } else {
      kinds.push_back(ItemKind::kMean);
    }
  }

  auto subset = [&](bool keep_mean) {
    auto s = sel.Clone();
    std::vector<sql::SelectItem> kept;
    for (size_t i = 0; i < s->items.size(); ++i) {
      bool keep = kinds[i] == ItemKind::kGroup ||
                  (keep_mean ? kinds[i] == ItemKind::kMean
                             : kinds[i] == ItemKind::kExtreme);
      if (keep) kept.push_back(std::move(s->items[i]));
    }
    s->items = std::move(kept);
    return s;
  };

  // Approximate the mean-like half through the normal path.
  auto mean_sel = subset(/*keep_mean=*/true);
  sql::Statement mean_stmt;
  mean_stmt.kind = sql::StatementKind::kSelect;
  mean_stmt.select = std::move(mean_sel);
  ExecInfo sub_info;
  bool sub_handled = false;
  auto approx = TryApproximate(
      sql::PrintStatement(mean_stmt, conn_.dialect().print_options), &sub_info,
      &sub_handled);
  if (!sub_handled || !approx.ok()) {
    info->skip_reason = "decomposition: mean-like half not approximable (" +
                        sub_info.skip_reason + ")";
    return Status::Unsupported(info->skip_reason);
  }

  // Exact extreme half on the base tables.
  auto extreme_sel = subset(/*keep_mean=*/false);
  sql::Statement ex_stmt;
  ex_stmt.kind = sql::StatementKind::kSelect;
  ex_stmt.select = std::move(extreme_sel);
  auto exact = conn_.ExecuteAst(ex_stmt);
  if (!exact.ok()) {
    info->skip_reason = "decomposition: exact half failed";
    return exact.status();
  }

  // ---- Merge by group key, preserving the original item order -------------
  const ApproxAnswer& a = approx.value();
  const engine::ResultSet& e = exact.value();

  // Column positions of each original item inside the two halves.
  std::vector<int> pos_in_mean(sel.items.size(), -1);
  std::vector<int> pos_in_extreme(sel.items.size(), -1);
  int mi = 0, xi = 0;
  for (size_t i = 0; i < sel.items.size(); ++i) {
    if (kinds[i] == ItemKind::kGroup) {
      pos_in_mean[i] = mi++;
      pos_in_extreme[i] = xi++;
    } else if (kinds[i] == ItemKind::kMean) {
      pos_in_mean[i] = mi++;
    } else {
      pos_in_extreme[i] = xi++;
    }
  }
  std::vector<int> mean_group_cols, extreme_group_cols;
  for (size_t i = 0; i < sel.items.size(); ++i) {
    if (kinds[i] == ItemKind::kGroup) {
      mean_group_cols.push_back(pos_in_mean[i]);
      extreme_group_cols.push_back(pos_in_extreme[i]);
    }
  }
  std::unordered_map<std::string, size_t> exact_rows;
  for (size_t r = 0; r < e.NumRows(); ++r) {
    exact_rows[RowKey(e, r, extreme_group_cols)] = r;
  }

  ApproxAnswer out;
  out.confidence = a.confidence;
  out.max_relative_error = a.max_relative_error;
  out.unmeasured_rows = a.unmeasured_rows;
  out.aggregates = a.aggregates;
  auto table = std::make_shared<engine::Table>();
  // Final schema: original items, then the error columns of the mean half.
  for (size_t i = 0; i < sel.items.size(); ++i) {
    std::string name = !sel.items[i].alias.empty()
                           ? sel.items[i].alias
                           : sql::PrintExpr(*sel.items[i].expr);
    out.result.names.push_back(name);
    table->AddColumn(name, TypeId::kNull);
  }
  size_t err_start = table->num_columns();
  for (size_t c = 0; c < a.result.NumCols(); ++c) {
    bool is_err = true;
    for (const auto& agg : a.aggregates) {
      if (agg.point_column == static_cast<int>(c)) is_err = false;
    }
    for (int gc : mean_group_cols) {
      if (gc == static_cast<int>(c)) is_err = false;
    }
    if (is_err) {
      out.result.names.push_back(a.result.names[c]);
      table->AddColumn(a.result.names[c], TypeId::kNull);
    }
  }

  for (size_t r = 0; r < a.result.NumRows(); ++r) {
    std::vector<Value> row;
    auto eit = exact_rows.find(RowKey(a.result, r, mean_group_cols));
    for (size_t i = 0; i < sel.items.size(); ++i) {
      if (kinds[i] == ItemKind::kExtreme) {
        row.push_back(eit == exact_rows.end()
                          ? Value::Null()
                          : e.Get(eit->second,
                                  static_cast<size_t>(pos_in_extreme[i])));
      } else {
        row.push_back(a.result.Get(r, static_cast<size_t>(pos_in_mean[i])));
      }
    }
    // Error columns.
    size_t err_col = err_start;
    for (size_t c = 0; c < a.result.NumCols() && err_col < table->num_columns();
         ++c) {
      bool is_err = true;
      for (const auto& agg : a.aggregates) {
        if (agg.point_column == static_cast<int>(c)) is_err = false;
      }
      for (int gc : mean_group_cols) {
        if (gc == static_cast<int>(c)) is_err = false;
      }
      if (is_err) {
        row.push_back(a.result.Get(r, c));
        ++err_col;
      }
    }
    table->AppendRow(row);
  }
  out.result.table = std::move(table);
  *handled = true;
  info->approximated = true;
  info->max_relative_error = a.max_relative_error;
  info->subsamples = sub_info.subsamples;
  info->rewritten_sql = sub_info.rewritten_sql;
  return out;
}

int64_t VerdictContext::EstimateGroupCardinality(
    const SelectStmt& sel, const QueryClass& qc,
    const std::vector<sampling::SampleInfo>& samples) {
  if (sel.group_by.empty()) return 0;
  // Only plain column references are probed.
  std::vector<const Expr*> cols;
  for (const auto& g : sel.group_by) {
    if (g->kind != ExprKind::kColumnRef) return 0;
    cols.push_back(g.get());
  }
  // Locate the relation owning the majority of the group columns.
  const engine::Catalog& cat = conn_.database()->catalog();
  std::map<std::string, int> votes;  // base table -> count
  for (const Expr* c : cols) {
    for (const auto& r : qc.relations) {
      if (r.is_derived) continue;
      auto t = cat.GetTable(r.base_table);
      if (t && t->ColumnIndex(c->name) >= 0) {
        votes[r.base_table] += 1;
        break;
      }
    }
  }
  if (votes.empty()) return 0;
  std::string base = votes.begin()->first;
  for (const auto& [b, v] : votes) {
    if (v > votes[base]) base = b;
  }
  // Probe the smallest sample of that base table; fall back to scanning the
  // base table itself when it is dimension-sized (cheap and exact).
  const sampling::SampleInfo* probe = nullptr;
  for (const auto& s : samples) {
    if (s.base_table != base) continue;
    if (probe == nullptr || s.sample_rows < probe->sample_rows) probe = &s;
  }
  std::string probe_table;
  if (probe != nullptr) {
    probe_table = probe->sample_table;
  } else {
    auto t = cat.GetTable(base);
    if (!t || static_cast<int64_t>(t->num_rows()) >=
                  options_.min_rows_for_sampling) {
      return 0;
    }
    probe_table = base;
  }
  std::string expr;
  if (cols.size() == 1) {
    expr = cols[0]->name;
  } else {
    expr = "concat(";
    for (size_t i = 0; i < cols.size(); ++i) {
      if (i) expr += ", '|', ";
      expr += cols[i]->name;
    }
    expr += ")";
  }
  auto rs = conn_.Execute("select count(distinct " + expr + ") as c from " +
                          probe_table);
  if (!rs.ok() || rs.value().NumRows() == 0) return 0;
  return rs.value().Get(0, 0).AsInt();
}

}  // namespace vdb::core
