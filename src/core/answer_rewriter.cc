#include "core/answer_rewriter.h"

#include <cmath>

#include "common/stats_math.h"

namespace vdb::core {

Result<ApproxAnswer> AnswerRewriter::Rewrite(
    const engine::ResultSet& raw, const std::vector<RewrittenColumn>& columns) {
  if (raw.NumCols() != columns.size()) {
    return Status::Internal(
        "rewritten-query result does not match the declared layout");
  }
  const double z = vdb::NormalCriticalValue(options_.confidence);

  ApproxAnswer out;
  out.confidence = options_.confidence;
  auto table = std::make_shared<engine::Table>();

  // Map estimate ordinal -> error info slot.
  std::vector<int> info_of_column(columns.size(), -1);

  // First pass: user-visible columns (groups + estimates, original order).
  for (size_t c = 0; c < columns.size(); ++c) {
    const auto& col = columns[c];
    if (col.kind == RewrittenColumn::Kind::kError) continue;
    out.result.names.push_back(col.name);
    table->AddColumn(col.name, raw.table->column(c));
    if (col.kind == RewrittenColumn::Kind::kEstimate) {
      AggregateErrorInfo info;
      info.name = col.name;
      info.point_column = static_cast<int>(table->num_columns()) - 1;
      info_of_column[c] = static_cast<int>(out.aggregates.size());
      out.aggregates.push_back(info);
    }
  }

  // Second pass: error columns scaled to the confidence half-width.
  for (size_t c = 0; c < columns.size(); ++c) {
    const auto& col = columns[c];
    if (col.kind != RewrittenColumn::Kind::kError) continue;
    int agg_slot = col.estimate_column >= 0
                       ? info_of_column[static_cast<size_t>(col.estimate_column)]
                       : -1;
    if (agg_slot < 0) {
      return Status::Internal("error column without a matching estimate");
    }
    AggregateErrorInfo& info = out.aggregates[static_cast<size_t>(agg_slot)];
    engine::Column scaled(TypeId::kDouble);
    const engine::Column& raw_col = raw.table->column(c);
    const engine::Column& point_col = raw.table->column(
        static_cast<size_t>(col.estimate_column));
    for (size_t r = 0; r < raw.NumRows(); ++r) {
      if (raw_col.IsNull(r)) {
        // A single subsample in the group: no spread information. Counted,
        // not ignored — the contract check treats such rows as unverified.
        scaled.AppendNull();
        ++info.no_spread_rows;
        ++out.unmeasured_rows;
        continue;
      }
      double half = z * raw_col.Get(r).AsDouble();
      scaled.AppendDouble(half);
      double point = point_col.IsNull(r) ? 0.0 : point_col.Get(r).AsDouble();
      if (std::abs(point) > 1e-12) {
        double rel = std::abs(half / point);
        info.max_relative_error = std::max(info.max_relative_error, rel);
        out.max_relative_error = std::max(out.max_relative_error, rel);
        ++info.measured_rows;
      } else if (std::abs(half) <= 1e-12) {
        // Point and spread both ~0: an exact zero, relative error 0.
        ++info.measured_rows;
      } else {
        // Near-zero point with real spread: the relative error is
        // unbounded, so it must not silently drop out of the max.
        ++info.tiny_point_rows;
        ++out.unmeasured_rows;
      }
    }
    if (options_.include_error_columns) {
      info.error_column = static_cast<int>(table->num_columns());
      out.result.names.push_back(col.name);
      table->AddColumn(col.name, std::move(scaled));
    }
  }

  out.result.table = std::move(table);
  return out;
}

}  // namespace vdb::core
