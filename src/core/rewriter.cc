#include "core/rewriter.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "engine/functions.h"
#include "sql/printer.h"

namespace vdb::core {

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::SelectStmt;
using sql::TableRef;

Expr::Ptr Ref(const std::string& qualifier, const std::string& name) {
  return sql::MakeColumnRef(qualifier, name);
}

Expr::Ptr Fn(const std::string& name, std::vector<Expr::Ptr> args) {
  return sql::MakeFunction(name, std::move(args));
}

Expr::Ptr Bin(BinaryOp op, Expr::Ptr l, Expr::Ptr r) {
  return sql::MakeBinary(op, std::move(l), std::move(r));
}

/// sum(count(*)) over (partition by <groups>)  — the per-group total sample
/// tuple count (Appendix G, Query 9). Used by the diagnostics the rewriter
/// can attach; the default estimators below scale by b instead, which keeps
/// the estimator unbiased *and* non-degenerate for count() under constant
/// sampling probabilities (the pure ratio form of Query 9 has zero
/// cross-subsample variance when verdict_prob is constant).
Expr::Ptr WindowGroupTotal(const std::vector<Expr::Ptr>& group_protos) {
  auto count_star = Fn("count", {});
  count_star->args.push_back(sql::MakeStar());
  auto win = Fn("sum", {});
  win->args.push_back(std::move(count_star));
  win->is_window = true;
  for (const auto& g : group_protos) win->partition_by.push_back(g->Clone());
  return win;
}

/// How subsample ids are generated for the sampled relations of one query.
struct SidPlan {
  enum class Mode {
    kRandomSingle,   // one sampled relation, sid = 1 + floor(rand()*b)
    kHashBlock,      // sid from hash blocks of a universe column
    kRecombine,      // two random-sid relations combined via h(i,j)
  };
  Mode mode = Mode::kRandomSingle;
  std::vector<std::string> sampled_aliases;  // 1 or 2 entries
  // kHashBlock:
  std::string hash_alias;    // relation owning the hashed column
  std::string hash_column;
  double tau = 1.0;          // effective universe ratio
  // Probability expression mode: per-tuple product vs constant tau.
  bool constant_prob = false;
};

/// Per-query rewrite state shared by the helpers.
struct RewriteCtx {
  const SamplePlan* plan = nullptr;
  SidPlan sid;
  int b = 0;
  std::vector<Expr::Ptr> group_protos;  // original group-by expressions
  bool complete_replica = false;  // nested outer level: estimates need no
                                  // scaling (each sid is a full replica)

  /// Joint inclusion-probability expression for one tuple of the join.
  Expr::Ptr ProbExpr() const {
    if (complete_replica) return sql::MakeDoubleLit(1.0);
    if (sid.constant_prob) return sql::MakeDoubleLit(sid.tau);
    Expr::Ptr p;
    for (const auto& alias : sid.sampled_aliases) {
      auto term = Ref(alias, "verdict_prob");
      p = p ? Bin(BinaryOp::kMul, std::move(p), std::move(term))
            : std::move(term);
    }
    if (!p) p = sql::MakeDoubleLit(1.0);
    return p;
  }

  /// The subsample-id expression used in GROUP BY and the select list.
  Expr::Ptr SidExpr() const {
    switch (sid.mode) {
      case SidPlan::Mode::kRandomSingle:
        return Ref(sid.sampled_aliases[0], "__vdb_sid");
      case SidPlan::Mode::kHashBlock: {
        // 1 + floor(verdict_hash(col) * (b / tau)); hash < tau on the sample.
        auto h = Fn("verdict_hash", {});
        h->args.push_back(Ref(sid.hash_alias, sid.hash_column));
        auto scaled = Bin(BinaryOp::kMul, std::move(h),
                          sql::MakeDoubleLit(static_cast<double>(b) /
                                             std::max(sid.tau, 1e-12)));
        auto fl = Fn("floor", {});
        fl->args.push_back(std::move(scaled));
        return Bin(BinaryOp::kAdd, sql::MakeIntLit(1), std::move(fl));
      }
      case SidPlan::Mode::kRecombine: {
        // h(i,j) = floor((i-1)/sb)*sb + floor((j-1)/sb) + 1, sb = sqrt(b)
        // (Theorem 4).
        int sb = static_cast<int>(std::lround(std::sqrt(b)));
        auto block = [&](const std::string& alias) {
          auto fl = Fn("floor", {});
          fl->args.push_back(
              Bin(BinaryOp::kDiv,
                  Bin(BinaryOp::kSub, Ref(alias, "__vdb_sid"),
                      sql::MakeIntLit(1)),
                  sql::MakeIntLit(sb)));
          return fl;
        };
        auto lhs = Bin(BinaryOp::kMul, block(sid.sampled_aliases[0]),
                       sql::MakeIntLit(sb));
        auto sum = Bin(BinaryOp::kAdd, std::move(lhs),
                       block(sid.sampled_aliases[1]));
        return Bin(BinaryOp::kAdd, std::move(sum), sql::MakeIntLit(1));
      }
    }
    return sql::MakeIntLit(1);
  }
};

/// Builds the per-subsample unbiased-estimate expression for one aggregate
/// call (§4.2 and Appendix G).
///
/// count/sum have two forms:
///  * standalone (`in_compound == false`): b * sum(v/p) — a b-scaled HT
///    total whose outer combine sum(e)/b reproduces the full-sample HT
///    estimate exactly, even when (group, sid) cells are sparse;
///  * inside a compound expression (e.g. sum(a)/sum(b)):
///    (sum(v/p)/count(*)) * (sum(count(*)) over (partition by g)) — the
///    Query 9 window-ratio form, which is full-scale per cell so compound
///    statistics stay unbiased under the ssize-weighted combine.
Result<Expr::Ptr> EstimateExpr(const Expr& agg, const RewriteCtx& ctx,
                               bool in_compound) {
  const std::string& name = agg.name;
  bool star = agg.args.empty() || agg.args[0]->kind == ExprKind::kStar;

  if (ctx.complete_replica) {
    // Each subsample is a full replica of the (estimated) derived table:
    // apply the aggregate directly within (group, sid).
    return agg.Clone();
  }

  if (name == "count" && agg.distinct) {
    if (star) {
      return Status::Unsupported("count(distinct *) is not valid");
    }
    // Universe-block estimate: each hash block covers tau/b of the domain.
    auto cd = agg.Clone();
    return Bin(BinaryOp::kMul, std::move(cd),
               sql::MakeDoubleLit(static_cast<double>(ctx.b) /
                                  std::max(ctx.sid.tau, 1e-12)));
  }
  if (name == "count" || name == "sum") {
    // b * sum(v / p): the subsample (≈ n/b tuples with inclusion probability
    // p) is itself a Bernoulli sample with probability p/b, so its
    // Horvitz-Thompson total times b is an unbiased estimate of the
    // population total — and its cross-subsample variance reflects both the
    // membership noise and the value noise.
    Expr::Ptr v;
    if (name == "count" && star) {
      v = sql::MakeDoubleLit(1.0);
    } else if (name == "count") {
      // count(x): count non-nulls.
      auto c = std::make_unique<Expr>(ExprKind::kCase);
      auto isnull = std::make_unique<Expr>(ExprKind::kIsNull);
      isnull->args.push_back(agg.args[0]->Clone());
      c->case_whens.push_back(std::move(isnull));
      c->case_thens.push_back(sql::MakeDoubleLit(0.0));
      c->case_else = sql::MakeDoubleLit(1.0);
      v = std::move(c);
    } else {
      v = agg.args[0]->Clone();
    }
    auto scaled = Bin(BinaryOp::kDiv, std::move(v), ctx.ProbExpr());
    auto sum_scaled = Fn("sum", {});
    sum_scaled->args.push_back(std::move(scaled));
    if (!in_compound) {
      return Bin(BinaryOp::kMul, std::move(sum_scaled),
                 sql::MakeIntLit(ctx.b));
    }
    auto count_star = Fn("count", {});
    count_star->args.push_back(sql::MakeStar());
    auto mean = Bin(BinaryOp::kDiv, std::move(sum_scaled),
                    std::move(count_star));
    return Bin(BinaryOp::kMul, std::move(mean),
               WindowGroupTotal(ctx.group_protos));
  }
  if (name == "avg") {
    // sum(x / p) / sum(1 / p): Horvitz-Thompson ratio estimator.
    auto num = Fn("sum", {});
    num->args.push_back(
        Bin(BinaryOp::kDiv, agg.args[0]->Clone(), ctx.ProbExpr()));
    auto den = Fn("sum", {});
    den->args.push_back(
        Bin(BinaryOp::kDiv, sql::MakeDoubleLit(1.0), ctx.ProbExpr()));
    return Bin(BinaryOp::kDiv, std::move(num), std::move(den));
  }
  // Location-like statistics (quantile/median/var/stddev/UDAs): the
  // per-subsample value estimates the statistic directly (§2.2: any UDA
  // converging to a non-degenerate distribution).
  return agg.Clone();
}

/// One "statistic" of the query: a select item (or HAVING aggregate call)
/// containing at least one aggregate.
struct Statistic {
  const Expr* expr = nullptr;  // original expression
  std::string output_name;     // user-visible name
  bool round_to_int = false;   // bare count(*): round like Query 9
  /// Contains a total-type aggregate (count/sum/count-distinct) whose
  /// b-scaled per-subsample estimates average to the full-sample HT estimate
  /// exactly when combined UNWEIGHTED. Location statistics (avg, quantile,
  /// var, UDAs) combine with ssize weights instead (Appendix G).
  bool scaled_total = false;
};

/// True if the statistic expression is itself a bare total-type aggregate:
/// count(*), count(x), count(distinct x) or sum(x). These use b-scaled
/// per-subsample estimates and the sum(e)/b combine, which treats empty
/// (group, sid) cells as zero and reproduces the full-sample HT estimate
/// exactly (count-distinct: sum of per-hash-block counts divided by tau).
bool IsPureTotal(const Expr& e) {
  return e.kind == ExprKind::kFunction && !e.is_window &&
         (e.name == "count" || e.name == "sum");
}

/// Replaces every aggregate call under `e` with the per-subsample estimate.
/// `in_compound` is true when `e` is not itself a bare aggregate call.
Result<Expr::Ptr> ReplaceAggsWithEstimates(const Expr& e,
                                           const RewriteCtx& ctx,
                                           bool in_compound) {
  if (e.kind == ExprKind::kFunction && !e.is_window &&
      vdb::engine::IsAggregateFunction(e.name)) {
    return EstimateExpr(e, ctx, in_compound);
  }
  auto out = e.Clone();
  for (auto& a : out->args) {
    if (!a || a->kind == ExprKind::kStar) continue;
    auto r = ReplaceAggsWithEstimates(*a, ctx, /*in_compound=*/true);
    if (!r.ok()) return r.status();
    a = std::move(r).ValueOrDie();
  }
  for (auto& w : out->case_whens) {
    auto r = ReplaceAggsWithEstimates(*w, ctx, true);
    if (!r.ok()) return r.status();
    w = std::move(r).ValueOrDie();
  }
  for (auto& t : out->case_thens) {
    auto r = ReplaceAggsWithEstimates(*t, ctx, true);
    if (!r.ok()) return r.status();
    t = std::move(r).ValueOrDie();
  }
  if (out->case_else) {
    auto r = ReplaceAggsWithEstimates(*out->case_else, ctx, true);
    if (!r.ok()) return r.status();
    out->case_else = std::move(r).ValueOrDie();
  }
  return out;
}

/// Outer-query combination of per-subsample estimates (Appendix G):
/// ssize-weighted mean for location statistics; sum(e)/b for b-scaled
/// totals. The latter treats (group, sid) cells absent from the inner
/// result as zero, so it reproduces the full-sample Horvitz-Thompson
/// estimate EXACTLY even when groups are sparse across subsamples.
Expr::Ptr CombinePoint(int stat_index, bool round_to_int, bool weighted,
                       int b) {
  std::string e = "__vdb_e" + std::to_string(stat_index);
  Expr::Ptr point;
  if (weighted) {
    auto num = Fn("sum", {});
    num->args.push_back(
        Bin(BinaryOp::kMul, Ref("", e), Ref("", "__vdb_ssize")));
    auto den = Fn("sum", {});
    den->args.push_back(Ref("", "__vdb_ssize"));
    point = Bin(BinaryOp::kDiv, std::move(num), std::move(den));
  } else {
    auto total = Fn("sum", {});
    total->args.push_back(Ref("", e));
    point = Bin(BinaryOp::kDiv, std::move(total), sql::MakeIntLit(b));
  }
  if (round_to_int) {
    auto r = Fn("round", {});
    r->args.push_back(std::move(point));
    return r;
  }
  return point;
}

///   err = stddev(e) * sqrt(avg(ssize)) / sqrt(sum(ssize))
Expr::Ptr CombineError(int stat_index) {
  std::string e = "__vdb_e" + std::to_string(stat_index);
  auto sd = Fn("stddev", {});
  sd->args.push_back(Ref("", e));
  auto avg_ss = Fn("avg", {});
  avg_ss->args.push_back(Ref("", "__vdb_ssize"));
  auto sqrt_avg = Fn("sqrt", {});
  sqrt_avg->args.push_back(std::move(avg_ss));
  auto sum_ss = Fn("sum", {});
  sum_ss->args.push_back(Ref("", "__vdb_ssize"));
  auto sqrt_sum = Fn("sqrt", {});
  sqrt_sum->args.push_back(std::move(sum_ss));
  return Bin(BinaryOp::kDiv,
             Bin(BinaryOp::kMul, std::move(sd), std::move(sqrt_avg)),
             std::move(sqrt_sum));
}

/// Substitutes sampled base tables with variational derived tables:
///   T  ->  (select *, 1 + floor(rand()*b) as __vdb_sid from T_sample) as T
/// Relations using hash-block sids expose the sample directly (their sid is
/// computed from the hashed column at aggregation time).
///
/// rand() here is row-addressed (common/random.h): the sid a sample tuple
/// receives is a pure function of (query seed, its physical row in the
/// sample, the rand call site), so the sid projection — and every downstream
/// GROUP BY (g, __vdb_sid) — runs on the vectorized, morsel-parallel
/// substrate with bit-identical results at every thread count and plan
/// shape. The paper's requirement is only that each tuple draws its
/// subsample uniformly and independently (§4.1, Query 3); which uniform
/// value a given tuple draws was never specified, so addressing draws by row
/// rather than by draw order preserves the estimator exactly.
Status SubstituteSamples(TableRef* ref, const RewriteCtx& ctx) {
  switch (ref->kind) {
    case TableRef::Kind::kBase: {
      std::string alias = ref->EffectiveName();
      std::transform(alias.begin(), alias.end(), alias.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      auto it = ctx.plan->choices.find(alias);
      if (it == ctx.plan->choices.end() || !it->second.sampled) {
        return Status::Ok();
      }
      const auto& sample = it->second.sample;
      bool needs_random_sid =
          ctx.sid.mode != SidPlan::Mode::kHashBlock;
      if (needs_random_sid) {
        auto inner = std::make_unique<SelectStmt>();
        inner->items.emplace_back(sql::MakeStar(), "");
        // 1 + floor(rand() * b): Query 3 with every tuple kept (default
        // b*ns = n). The engine evaluates this with the row-addressed rand
        // batch kernel — no serial pin, no draw-order dependence.
        auto fl = Fn("floor", {});
        fl->args.push_back(Bin(BinaryOp::kMul, Fn("rand", {}),
                               sql::MakeIntLit(ctx.b)));
        inner->items.emplace_back(
            Bin(BinaryOp::kAdd, sql::MakeIntLit(1), std::move(fl)),
            "__vdb_sid");
        inner->from = sql::MakeBaseTable(sample.sample_table);
        ref->kind = TableRef::Kind::kDerived;
        ref->derived = std::move(inner);
        ref->alias = alias;
        ref->table_name.clear();
      } else {
        // Hash-block sid: just point at the sample table.
        ref->table_name = sample.sample_table;
        if (ref->alias.empty()) ref->alias = alias;
      }
      return Status::Ok();
    }
    case TableRef::Kind::kDerived:
      return Status::Ok();  // derived relations are never sampled
    case TableRef::Kind::kJoin: {
      VDB_RETURN_IF_ERROR(SubstituteSamples(ref->left.get(), ctx));
      return SubstituteSamples(ref->right.get(), ctx);
    }
  }
  return Status::Ok();
}

/// Decides the sid-generation strategy from the plan and query class.
Result<SidPlan> MakeSidPlan(const QueryClass& qc, const SamplePlan& plan) {
  SidPlan sp;
  for (const auto& [alias, choice] : plan.choices) {
    if (choice.sampled) sp.sampled_aliases.push_back(alias);
  }
  if (sp.sampled_aliases.empty()) {
    return Status::Internal("rewriter invoked without samples");
  }
  if (sp.sampled_aliases.size() == 1) {
    const auto& choice = plan.choices.at(sp.sampled_aliases[0]);
    if (qc.has_count_distinct &&
        choice.sample.type == sampling::SampleType::kHashed) {
      sp.mode = SidPlan::Mode::kHashBlock;
      sp.hash_alias = sp.sampled_aliases[0];
      sp.hash_column = choice.sample.columns[0];
      sp.tau = choice.sample.ratio;
      sp.constant_prob = false;  // per-tuple prob column still valid
    } else {
      sp.mode = SidPlan::Mode::kRandomSingle;
    }
    return sp;
  }
  // Two sampled relations.
  const auto& a = plan.choices.at(sp.sampled_aliases[0]);
  const auto& b = plan.choices.at(sp.sampled_aliases[1]);
  bool both_hashed = a.sample.type == sampling::SampleType::kHashed &&
                     b.sample.type == sampling::SampleType::kHashed;
  if (both_hashed) {
    // Universe join: both sides kept tuples whose join-key hash < tau; the
    // hash blocks of the key partition the join output directly, and the
    // joint inclusion probability is min(tau_a, tau_b) (not a product — the
    // same hash decides both sides).
    for (const auto& e : qc.join_edges) {
      auto matches = [&](const std::string& la, const std::string& lb,
                         const std::string& ca, const std::string& cb) {
        return la == sp.sampled_aliases[0] && lb == sp.sampled_aliases[1] &&
               a.sample.columns.size() == 1 && b.sample.columns.size() == 1 &&
               a.sample.columns[0] == ca && b.sample.columns[0] == cb;
      };
      if (matches(e.left_alias, e.right_alias, e.left_column,
                  e.right_column) ||
          matches(e.right_alias, e.left_alias, e.right_column,
                  e.left_column)) {
        sp.mode = SidPlan::Mode::kHashBlock;
        sp.hash_alias = sp.sampled_aliases[0];
        sp.hash_column = a.sample.columns[0];
        sp.tau = std::min(a.sample.ratio, b.sample.ratio);
        sp.constant_prob = true;
        return sp;
      }
    }
  }
  // Independent samples joined: Theorem 4 recombination.
  sp.mode = SidPlan::Mode::kRecombine;
  return sp;
}

std::string ItemOutputName(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) return item.expr->name;
  return sql::PrintExpr(*item.expr);
}

bool IsBareCount(const Expr& e) {
  return e.kind == ExprKind::kFunction && e.name == "count" && !e.distinct;
}

/// Builds the two-level rewritten query (or, in variational-table mode, just
/// the inner per-(group, sid) query of §5.2 / Query 7).
Result<RewriteResult> BuildRewrite(const SelectStmt& original, RewriteCtx& ctx,
                                   bool variational_table_mode);

}  // namespace

int AqpRewriter::ChooseB(uint64_t sample_rows) const {
  if (options_.subsample_count_override > 0) {
    int k = static_cast<int>(
        std::lround(std::sqrt(options_.subsample_count_override)));
    return std::max(2, k) * std::max(2, k);
  }
  // Default ns = n^(1/2)  =>  b = n^(1/2); as a perfect square, b = k^2 with
  // k = n^(1/4).
  double k = std::sqrt(std::sqrt(static_cast<double>(std::max<uint64_t>(
      sample_rows, 16))));
  int ki = std::clamp(static_cast<int>(std::lround(k)), 3, 40);
  return ki * ki;
}

Result<RewriteResult> AqpRewriter::RewriteFlat(const SelectStmt& original,
                                               const QueryClass& qc,
                                               const SamplePlan& plan) {
  RewriteCtx ctx;
  ctx.plan = &plan;
  auto sid = MakeSidPlan(qc, plan);
  if (!sid.ok()) return sid.status();
  ctx.sid = std::move(sid).ValueOrDie();

  uint64_t sample_rows = 0;
  for (const auto& alias : ctx.sid.sampled_aliases) {
    sample_rows = std::max(sample_rows,
                           plan.choices.at(alias).sample.sample_rows);
  }
  ctx.b = ChooseB(sample_rows);
  for (const auto& g : original.group_by) {
    ctx.group_protos.push_back(g->Clone());
  }

  return BuildRewrite(original, ctx, /*variational_table_mode=*/false);
}

// BuildRewrite is declared as a private-like free function via a member
// helper; kept as a member on the class for access to options_.
Result<RewriteResult> AqpRewriter::RewriteNested(
    const SelectStmt& original, const QueryClass& qc_outer,
    const QueryClass& qc_inner, const SamplePlan& plan_inner,
    int64_t inner_group_hint) {
  const SelectStmt& inner = *qc_outer.relations[0].derived;
  const std::string t_alias = qc_outer.relations[0].alias;

  // 1. Middle query: the variational table of the inner aggregate (Query 7):
  //    per (inner groups, sid) estimates named by the inner aliases.
  RewriteCtx ictx;
  ictx.plan = &plan_inner;
  auto sid = MakeSidPlan(qc_inner, plan_inner);
  if (!sid.ok()) return sid.status();
  ictx.sid = std::move(sid).ValueOrDie();
  uint64_t sample_rows = 0;
  for (const auto& alias : ictx.sid.sampled_aliases) {
    sample_rows = std::max(sample_rows,
                           plan_inner.choices.at(alias).sample.sample_rows);
  }
  ictx.b = ChooseB(sample_rows);
  if (inner_group_hint > 0) {
    // Keep >= ~5 sample tuples per (group, sid) cell on average.
    constexpr int64_t kMinCellTuples = 5;
    int64_t b_max = static_cast<int64_t>(sample_rows) /
                    (inner_group_hint * kMinCellTuples);
    if (b_max < 4) {
      return Status::Unsupported(
          "nested AQP infeasible: inner grouping too fine for the sample");
    }
    ictx.b = static_cast<int>(std::min<int64_t>(ictx.b, b_max));
    if (ictx.sid.mode == SidPlan::Mode::kRecombine) {
      int k = std::max(
          2, static_cast<int>(std::sqrt(static_cast<double>(ictx.b))));
      ictx.b = k * k;  // Theorem 4 needs a perfect square
    }
  }
  for (const auto& g : inner.group_by) ictx.group_protos.push_back(g->Clone());

  auto middle = BuildRewrite(inner, ictx, /*variational_table_mode=*/true);
  if (!middle.ok()) return middle.status();

  // 2. Outer query: rewrite against the middle table in complete-replica
  //    mode — each sid partition of the variational table is a full estimate
  //    of the derived table, so aggregates apply directly per (group, sid)
  //    and per-subsample weights are the propagated tuple counts.
  auto outer = original.Clone();
  outer->from = sql::MakeDerivedTable(
      std::move(middle.value().rewritten), t_alias);

  RewriteCtx octx;
  SamplePlan empty_plan;  // outer relations are not sampled again
  octx.plan = &empty_plan;
  octx.complete_replica = true;
  octx.b = ictx.b;
  octx.sid.mode = SidPlan::Mode::kRandomSingle;
  octx.sid.sampled_aliases = {t_alias};
  for (const auto& g : outer->group_by) octx.group_protos.push_back(g->Clone());

  auto result = BuildRewrite(*outer, octx, /*variational_table_mode=*/false);
  if (!result.ok()) return result.status();
  result.value().b = ictx.b;
  return result;
}

namespace {

Result<RewriteResult> BuildRewrite(const SelectStmt& original, RewriteCtx& ctx,
                                   bool variational_table_mode) {
  RewriteResult out;
  out.b = ctx.b;

  // ---- Collect statistics (select items + HAVING aggregate calls) --------
  std::vector<Statistic> stats;
  std::map<std::string, int> stat_index;  // printed text -> index
  struct ItemPlan {
    bool is_group = false;
    int group_index = -1;   // which group expr it matches
    int stat = -1;          // statistic index
  };
  std::vector<ItemPlan> item_plans;

  std::map<std::string, int> group_text;  // printed group expr -> index
  for (size_t i = 0; i < original.group_by.size(); ++i) {
    const Expr& g = *original.group_by[i];
    group_text[sql::PrintExpr(g)] = static_cast<int>(i);
    if (g.kind == ExprKind::kColumnRef) {
      group_text[g.name] = static_cast<int>(i);
    }
  }

  for (const auto& item : original.items) {
    ItemPlan ip;
    std::string text = sql::PrintExpr(*item.expr);
    auto git = group_text.find(text);
    if (git == group_text.end() && item.expr->kind == ExprKind::kColumnRef) {
      git = group_text.find(item.expr->name);
    }
    if (git != group_text.end()) {
      ip.is_group = true;
      ip.group_index = git->second;
    } else {
      Statistic st;
      st.expr = item.expr.get();
      st.output_name = ItemOutputName(item);
      st.round_to_int = IsBareCount(*item.expr);
      st.scaled_total = IsPureTotal(*item.expr);
      auto [it, inserted] =
          stat_index.emplace(text, static_cast<int>(stats.size()));
      if (inserted) stats.push_back(std::move(st));
      ip.stat = it->second;
    }
    item_plans.push_back(ip);
  }
  // HAVING aggregate calls become additional statistics.
  if (original.having) {
    std::vector<const Expr*> stack = {original.having.get()};
    while (!stack.empty()) {
      const Expr* e = stack.back();
      stack.pop_back();
      if (e->kind == ExprKind::kFunction && !e->is_window &&
          vdb::engine::IsAggregateFunction(e->name)) {
        std::string text = sql::PrintExpr(*e);
        if (!stat_index.count(text)) {
          Statistic st;
          st.expr = e;
          st.output_name = "__vdb_h" + std::to_string(stats.size());
          st.scaled_total = IsPureTotal(*e);
          stat_index.emplace(text, static_cast<int>(stats.size()));
          stats.push_back(std::move(st));
        }
        continue;
      }
      for (const auto& a : e->args) {
        if (a) stack.push_back(a.get());
      }
      for (const auto& w : e->case_whens) stack.push_back(w.get());
      for (const auto& t : e->case_thens) stack.push_back(t.get());
      if (e->case_else) stack.push_back(e->case_else.get());
    }
  }

  // ---- Inner query ---------------------------------------------------------
  auto inner = std::make_unique<SelectStmt>();
  for (size_t i = 0; i < original.group_by.size(); ++i) {
    inner->items.emplace_back(original.group_by[i]->Clone(),
                              "__vdb_g" + std::to_string(i));
  }
  for (size_t k = 0; k < stats.size(); ++k) {
    auto est = ReplaceAggsWithEstimates(*stats[k].expr, ctx,
                                        !stats[k].scaled_total);
    if (!est.ok()) return est.status();
    inner->items.emplace_back(std::move(est).ValueOrDie(),
                              "__vdb_e" + std::to_string(k));
  }
  Expr::Ptr sid_expr = ctx.SidExpr();
  inner->items.emplace_back(sid_expr->Clone(), "__vdb_sid");
  if (ctx.complete_replica) {
    // Propagate tuple-level subsample sizes from the variational table.
    auto ss = Fn("sum", {});
    ss->args.push_back(Ref(ctx.sid.sampled_aliases[0], "__vdb_ssize"));
    inner->items.emplace_back(std::move(ss), "__vdb_ssize");
  } else {
    auto cs = Fn("count", {});
    cs->args.push_back(sql::MakeStar());
    inner->items.emplace_back(std::move(cs), "__vdb_ssize");
  }

  // FROM with samples substituted.
  if (!original.from) return Status::Internal("aggregate query without FROM");
  auto from = original.from->Clone();
  VDB_RETURN_IF_ERROR(SubstituteSamples(from.get(), ctx));
  inner->from = std::move(from);
  if (original.where) inner->where = original.where->Clone();
  for (const auto& g : original.group_by) {
    inner->group_by.push_back(g->Clone());
  }
  inner->group_by.push_back(sid_expr->Clone());

  if (variational_table_mode) {
    // Query 7: expose the variational table itself, renaming group and
    // estimate outputs to their user-facing names so the outer query can
    // reference them.
    for (size_t i = 0; i < original.group_by.size(); ++i) {
      // Find the user-facing name: a select item matching the group expr.
      std::string name = "__vdb_g" + std::to_string(i);
      for (size_t j = 0; j < original.items.size(); ++j) {
        if (item_plans[j].is_group &&
            item_plans[j].group_index == static_cast<int>(i)) {
          name = ItemOutputName(original.items[j]);
          break;
        }
      }
      inner->items[i].alias = name;
    }
    for (size_t k = 0; k < stats.size(); ++k) {
      inner->items[original.group_by.size() + k].alias =
          stats[k].output_name;
    }
    out.rewritten = std::move(inner);
    return out;
  }

  // ---- Outer query ---------------------------------------------------------
  auto outer = std::make_unique<SelectStmt>();
  outer->from = sql::MakeDerivedTable(std::move(inner), "__vdb_vt");

  std::vector<int> estimate_col_of_stat(stats.size(), -1);
  for (size_t j = 0; j < original.items.size(); ++j) {
    const ItemPlan& ip = item_plans[j];
    std::string name = ItemOutputName(original.items[j]);
    if (ip.is_group) {
      outer->items.emplace_back(
          Ref("", "__vdb_g" + std::to_string(ip.group_index)), name);
      out.columns.push_back(
          {RewrittenColumn::Kind::kGroup, name, -1});
    } else {
      const auto st = static_cast<size_t>(ip.stat);
      outer->items.emplace_back(
          CombinePoint(ip.stat, stats[st].round_to_int,
                       !stats[st].scaled_total, ctx.b),
          name);
      estimate_col_of_stat[st] = static_cast<int>(out.columns.size());
      out.columns.push_back(
          {RewrittenColumn::Kind::kEstimate, name, -1});
    }
  }
  // Error columns appended after all user-visible columns.
  for (size_t j = 0; j < original.items.size(); ++j) {
    const ItemPlan& ip = item_plans[j];
    if (ip.is_group) continue;
    std::string name = ItemOutputName(original.items[j]) + "_err";
    outer->items.emplace_back(CombineError(ip.stat), name);
    out.columns.push_back(
        {RewrittenColumn::Kind::kError, name,
         estimate_col_of_stat[static_cast<size_t>(ip.stat)]});
  }

  for (size_t i = 0; i < original.group_by.size(); ++i) {
    outer->group_by.push_back(Ref("", "__vdb_g" + std::to_string(i)));
  }

  // HAVING: aggregate calls -> point-combine expressions.
  if (original.having) {
    struct Replacer {
      const std::map<std::string, int>* stat_index;
      const std::vector<Statistic>* stats;
      int b;
      Expr::Ptr Rewrite(const Expr& e) const {
        if (e.kind == ExprKind::kFunction && !e.is_window &&
            vdb::engine::IsAggregateFunction(e.name)) {
          auto it = stat_index->find(sql::PrintExpr(e));
          if (it != stat_index->end()) {
            return CombinePoint(
                it->second, false,
                !(*stats)[static_cast<size_t>(it->second)].scaled_total, b);
          }
        }
        auto out = e.Clone();
        for (auto& a : out->args) {
          if (a && a->kind != ExprKind::kStar) a = Rewrite(*a);
        }
        for (auto& w : out->case_whens) w = Rewrite(*w);
        for (auto& t : out->case_thens) t = Rewrite(*t);
        if (out->case_else) out->case_else = Rewrite(*out->case_else);
        return out;
      }
    };
    Replacer rep{&stat_index, &stats, ctx.b};
    outer->having = rep.Rewrite(*original.having);
    // Group references inside HAVING must point at the outer group aliases.
    struct GroupFixer {
      const std::map<std::string, int>* group_text;
      void Fix(Expr* e) const {
        if (e->kind == ExprKind::kColumnRef) {
          auto it = group_text->find(e->name);
          if (it == group_text->end()) {
            it = group_text->find(sql::PrintExpr(*e));
          }
          if (it != group_text->end()) {
            e->qualifier.clear();
            e->name = "__vdb_g" + std::to_string(it->second);
          }
          return;
        }
        for (auto& a : e->args) {
          if (a) Fix(a.get());
        }
        for (auto& w : e->case_whens) Fix(w.get());
        for (auto& t : e->case_thens) Fix(t.get());
        if (e->case_else) Fix(e->case_else.get());
      }
    };
    GroupFixer fixer{&group_text};
    fixer.Fix(outer->having.get());
  }

  // ORDER BY / LIMIT carry over; expressions are remapped to output columns
  // by name or by matching the original select-item text.
  for (const auto& o : original.order_by) {
    sql::OrderItem oi;
    oi.ascending = o.ascending;
    std::string text = sql::PrintExpr(*o.expr);
    int matched = -1;
    for (size_t j = 0; j < original.items.size(); ++j) {
      if (sql::PrintExpr(*original.items[j].expr) == text ||
          ItemOutputName(original.items[j]) == text) {
        matched = static_cast<int>(j);
        break;
      }
    }
    if (matched >= 0) {
      oi.expr = Ref(
          "", ItemOutputName(original.items[static_cast<size_t>(matched)]));
    } else {
      oi.expr = o.expr->Clone();
    }
    outer->order_by.push_back(std::move(oi));
  }
  outer->limit = original.limit;

  out.rewritten = std::move(outer);
  return out;
}

}  // namespace

}  // namespace vdb::core
