// Answer Rewriter (paper Fig. 1b): converts the raw result set of the
// rewritten query into the user-facing approximate answer — scaling error
// columns to the requested confidence level and summarizing relative errors
// for the High-level Accuracy Contract check.

#ifndef VDB_CORE_ANSWER_REWRITER_H_
#define VDB_CORE_ANSWER_REWRITER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/options.h"
#include "core/rewriter.h"
#include "engine/database.h"

namespace vdb::core {

/// Error summary for one approximated aggregate column.
struct AggregateErrorInfo {
  std::string name;
  int point_column = -1;  // ordinal in the final result
  int error_column = -1;  // ordinal of its ±error column (-1 when stripped)
  /// Max over rows of (half-width / |point|) at the configured confidence,
  /// taken over measured rows only (see the counters below).
  double max_relative_error = 0.0;
  /// Rows whose relative error was actually measured (or provably zero).
  int64_t measured_rows = 0;
  /// Rows with a NULL standard error: the group landed in a single
  /// subsample, so there is no spread information at all.
  int64_t no_spread_rows = 0;
  /// Rows with |point| <= 1e-12 but a non-negligible half-width: the
  /// relative error is unbounded, not small.
  int64_t tiny_point_rows = 0;
};

struct ApproxAnswer {
  engine::ResultSet result;
  std::vector<AggregateErrorInfo> aggregates;
  double confidence = 0.95;
  /// Max relative error across all aggregates and measured rows.
  double max_relative_error = 0.0;
  /// Rows excluded from max_relative_error (NULL stderr or unbounded
  /// relative error). When > 0 the error summary is incomplete: the
  /// High-level Accuracy Contract must treat the answer as unverified
  /// rather than passing vacuously on the measured subset.
  int64_t unmeasured_rows = 0;
};

class AnswerRewriter {
 public:
  explicit AnswerRewriter(const VerdictOptions& options) : options_(options) {}

  /// `raw` is the output of the rewritten query; `columns` describes its
  /// layout. Error columns carry the subsampling standard error; they are
  /// scaled by the normal critical value so the reported `<agg>_err` is the
  /// half-width of the confidence interval.
  Result<ApproxAnswer> Rewrite(const engine::ResultSet& raw,
                               const std::vector<RewrittenColumn>& columns);

 private:
  const VerdictOptions& options_;
};

}  // namespace vdb::core

#endif  // VDB_CORE_ANSWER_REWRITER_H_
