// User-facing approximation settings (paper §2.4). VerdictDB deliberately
// exposes an I/O budget rather than latency/accuracy knobs; an optional
// minimum-accuracy contract (HAC) is enforced *after* execution by falling
// back to the exact query.

#ifndef VDB_CORE_OPTIONS_H_
#define VDB_CORE_OPTIONS_H_

#include <cstdint>

namespace vdb::core {

struct VerdictOptions {
  /// Maximum fraction of each large table that a query may read (paper
  /// default 2%).
  double io_budget = 0.02;

  /// Confidence level for reported error bounds.
  double confidence = 0.95;

  /// High-level Accuracy Contract: minimum accuracy in [0,1); 0 disables.
  /// 0.99 means every approximate aggregate must be within ±1% relative
  /// error (at the configured confidence) or the query is re-run exactly.
  double min_accuracy = 0.0;

  /// Append `<agg>_err` columns to results. Off by default in the paper so
  /// legacy applications can consume results unchanged; on by default here
  /// because the examples and benches read them.
  bool include_error_columns = true;

  /// Tables smaller than this are never substituted with samples (paper
  /// default: 10M rows; lowered for laptop-scale data).
  int64_t min_rows_for_sampling = 100'000;

  /// Sample-planner heuristic: keep this many best candidates per join
  /// level (Appendix E.2). <= 0 means exhaustive enumeration.
  int planner_top_k = 10;

  /// Approximate queries must retain at least this many sample tuples per
  /// output group, else the planner declares AQP infeasible (matches the
  /// paper's behaviour on tq-3/8/15 whose grouping columns have extreme
  /// cardinality).
  int64_t min_tuples_per_group = 20;

  /// Number of subsamples b; 0 = automatic (≈ sqrt(sample rows), rounded to
  /// a perfect square so join sid-recombination is exact).
  int subsample_count_override = 0;

  /// Threads per query for the in-process engine's morsel-driven parallel
  /// executor (scans, partial aggregation, join probe, sample
  /// construction). 1 = classic serial execution (the bit-level reference);
  /// <= 0 = all hardware threads. Results are deterministic for any fixed
  /// setting, and identical across all settings > 1.
  int num_threads = 1;

  /// Per-query wall-clock deadline in milliseconds; 0 disables. The whole
  /// user query — sample probes, the rewritten approximate query, and any
  /// HAC exact fallback — shares one deadline, polled cooperatively at
  /// morsel/batch boundaries. An expired deadline unwinds the statement
  /// with kDeadlineExceeded; if the approximate answer is already in hand
  /// when the exact fallback trips, the approximate answer is served
  /// instead (with its error bounds and a degradation note in ExecInfo).
  int64_t timeout_ms = 0;

  /// Per-query memory budget in bytes for row-proportional execution
  /// buffers (join build/probe structures, group tables, gathered outputs);
  /// 0 disables. Exceeding it unwinds with kResourceExhausted naming the
  /// operator that tripped — never an abort. Accounting covers the large
  /// engine-side allocations, not every transient byte.
  uint64_t memory_budget_bytes = 0;
};

}  // namespace vdb::core

#endif  // VDB_CORE_OPTIONS_H_
