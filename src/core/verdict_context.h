// VerdictContext: the public facade of the library — the middleware box of
// Fig. 1a. Applications hand it SQL text; it intercepts supported analytical
// queries, substitutes samples, rewrites for variational subsampling,
// executes on the underlying database through the driver, and rewrites the
// answer. Everything else passes through unchanged.

#ifndef VDB_CORE_VERDICT_CONTEXT_H_
#define VDB_CORE_VERDICT_CONTEXT_H_

#include <memory>
#include <string>

#include "common/governor.h"
#include "common/status.h"
#include "core/answer_rewriter.h"
#include "core/options.h"
#include "core/query_classifier.h"
#include "driver/dialect.h"
#include "engine/database.h"
#include "sampling/sample_builder.h"
#include "sampling/sample_catalog.h"

namespace vdb::core {

class VerdictContext {
 public:
  VerdictContext(engine::Database* db,
                 driver::EngineKind engine_kind = driver::EngineKind::kGeneric,
                 VerdictOptions options = {});

  /// Per-query execution report.
  struct ExecInfo {
    bool approximated = false;   // a rewritten query was used
    bool exact_rerun = false;    // HAC violated -> exact fallback executed
    bool degraded = false;       // exact fallback tripped the governor;
                                 // the approximate answer was served instead
    std::string skip_reason;     // why a query passed through
    std::string rewritten_sql;   // the SQL actually sent (when approximated)
    std::string degradation_note;  // what degraded and why (when degraded)
    double max_relative_error = 0.0;
    int subsamples = 0;          // b
    uint64_t peak_memory_bytes = 0;  // governor peak reservation this query
  };

  /// Executes one statement. Supported aggregate SELECTs are approximated;
  /// everything else goes straight to the underlying database.
  Result<engine::ResultSet> Execute(const std::string& sql,
                                    ExecInfo* info = nullptr);

  /// Like Execute but returns the full approximate answer (error summaries).
  Result<ApproxAnswer> ExecuteApprox(const std::string& sql,
                                     ExecInfo* info = nullptr);

  // ---- sample preparation (offline stage, Fig. 2) ----
  sampling::SampleBuilder& sample_builder() { return builder_; }
  sampling::SampleCatalog& sample_catalog() { return catalog_; }
  driver::Connection& connection() { return conn_; }
  VerdictOptions& options() { return options_; }

  /// The per-query execution guard. Re-armed at the start of every Execute /
  /// ExecuteApprox from options().timeout_ms / memory_budget_bytes; exposed
  /// so another thread can RequestCancel() a query in flight (the next
  /// cooperative poll unwinds it with kCancelled).
  ExecGuard& exec_guard() { return guard_; }

 private:
  Result<ApproxAnswer> TryApproximate(const std::string& sql, ExecInfo* info,
                                      bool* handled);

  /// Splits a query mixing extreme (min/max) and mean-like statistics into
  /// an exact half and an approximated half, merging results by group key
  /// (paper §2.2).
  Result<ApproxAnswer> DecomposeAndExecute(const sql::SelectStmt& sel,
                                           const QueryClass& qc,
                                           ExecInfo* info, bool* handled);

  /// Estimates the number of output groups by probing a sample with
  /// count(distinct ...); 0 when no estimate is available.
  int64_t EstimateGroupCardinality(
      const sql::SelectStmt& sel, const QueryClass& qc,
      const std::vector<sampling::SampleInfo>& samples);

  VerdictOptions options_;
  /// One guard per context, re-armed per query; every statement the query
  /// issues (probes, rewritten query, exact fallback) shares it, so the
  /// deadline and budget cover the query end to end.
  ExecGuard guard_;
  driver::Connection conn_;
  sampling::SampleCatalog catalog_;
  sampling::SampleBuilder builder_;
};

}  // namespace vdb::core

#endif  // VDB_CORE_VERDICT_CONTEXT_H_
