#include "core/flattener.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "engine/functions.h"

namespace vdb::core {

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::SelectStmt;
using sql::TableRef;

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

/// True if every column reference under e is unqualified or qualified by
/// `alias`.
bool RefsOnlyAlias(const Expr& e, const std::string& alias) {
  if (e.kind == ExprKind::kColumnRef) {
    return e.qualifier.empty() || ToLower(e.qualifier) == alias;
  }
  for (const auto& a : e.args) {
    if (a && !RefsOnlyAlias(*a, alias)) return false;
  }
  for (const auto& w : e.case_whens) {
    if (!RefsOnlyAlias(*w, alias)) return false;
  }
  for (const auto& t : e.case_thens) {
    if (!RefsOnlyAlias(*t, alias)) return false;
  }
  if (e.case_else && !RefsOnlyAlias(*e.case_else, alias)) return false;
  return true;
}

struct FlattenPlan {
  std::string inner_table;     // subquery's base table
  std::string inner_corr_col;  // grouping / join column inside the subquery
  Expr::Ptr outer_ref;         // the outer column it correlates with
  Expr::Ptr agg_call;          // the aggregate (e.g. avg(price))
  std::vector<Expr::Ptr> local_filters;  // uncorrelated subquery conjuncts
};

/// Analyzes one scalar subquery. Returns true (filling *plan) if it matches
/// the correlated pattern: single base table, single aggregate item, WHERE
/// with exactly one `inner_col = outer.col` conjunct.
bool MatchCorrelated(const SelectStmt& sub, FlattenPlan* plan) {
  if (sub.union_next || sub.distinct || !sub.from) return false;
  if (sub.from->kind != TableRef::Kind::kBase) return false;
  if (!sub.group_by.empty() || sub.having || !sub.order_by.empty()) {
    return false;
  }
  if (sub.items.size() != 1) return false;
  const Expr& item = *sub.items[0].expr;
  if (item.kind != ExprKind::kFunction ||
      !vdb::engine::IsAggregateFunction(item.name) || item.is_window) {
    return false;
  }
  const std::string alias = ToLower(sub.from->EffectiveName());
  if (!RefsOnlyAlias(item, alias)) return false;
  if (!sub.where) return false;

  // Split conjuncts.
  std::vector<const Expr*> conjuncts;
  std::vector<const Expr*> stack = {sub.where.get()};
  while (!stack.empty()) {
    const Expr* e = stack.back();
    stack.pop_back();
    if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
      stack.push_back(e->args[0].get());
      stack.push_back(e->args[1].get());
    } else {
      conjuncts.push_back(e);
    }
  }
  const Expr* corr = nullptr;
  for (const Expr* c : conjuncts) {
    bool is_corr =
        c->kind == ExprKind::kBinary && c->binary_op == BinaryOp::kEq &&
        c->args[0]->kind == ExprKind::kColumnRef &&
        c->args[1]->kind == ExprKind::kColumnRef &&
        (RefsOnlyAlias(*c->args[0], alias) != RefsOnlyAlias(*c->args[1], alias));
    if (is_corr) {
      if (corr != nullptr) return false;  // at most one correlation column
      corr = c;
    } else if (!RefsOnlyAlias(*c, alias)) {
      return false;  // correlated non-equality predicates unsupported
    } else {
      plan->local_filters.push_back(c->Clone());
    }
  }
  if (corr == nullptr) return false;

  const Expr* inner_side = corr->args[0].get();
  const Expr* outer_side = corr->args[1].get();
  if (!RefsOnlyAlias(*inner_side, alias)) std::swap(inner_side, outer_side);
  plan->inner_table = ToLower(sub.from->table_name);
  plan->inner_corr_col = ToLower(inner_side->name);
  plan->outer_ref = outer_side->Clone();
  plan->agg_call = item.Clone();
  return true;
}

/// Finds comparison subqueries in the predicate tree; for each correlated
/// one, rewrites the comparison operand in place and appends a join spec.
struct PendingJoin {
  FlattenPlan plan;
  std::string derived_alias;
  std::string agg_alias;
};

void FindAndRewrite(Expr* e, std::vector<PendingJoin>* joins) {
  if (e->kind == ExprKind::kBinary && IsComparison(e->binary_op)) {
    for (int side = 0; side < 2; ++side) {
      Expr* operand = e->args[static_cast<size_t>(side)].get();
      if (operand->kind != ExprKind::kSubquery) continue;
      FlattenPlan plan;
      if (!MatchCorrelated(*operand->subquery, &plan)) continue;
      PendingJoin pj;
      pj.plan = std::move(plan);
      pj.derived_alias = "__vdb_f" + std::to_string(joins->size());
      pj.agg_alias = "__vdb_corr" + std::to_string(joins->size());
      // Replace the subquery operand with a reference into the derived table.
      operand->kind = ExprKind::kColumnRef;
      operand->qualifier = pj.derived_alias;
      operand->name = pj.agg_alias;
      operand->subquery.reset();
      joins->push_back(std::move(pj));
    }
  }
  for (auto& a : e->args) {
    if (a) FindAndRewrite(a.get(), joins);
  }
  for (auto& w : e->case_whens) FindAndRewrite(w.get(), joins);
  for (auto& t : e->case_thens) FindAndRewrite(t.get(), joins);
  if (e->case_else) FindAndRewrite(e->case_else.get(), joins);
}

}  // namespace

Result<int> FlattenComparisonSubqueries(sql::SelectStmt* stmt) {
  if (!stmt->where || !stmt->from) return 0;
  std::vector<PendingJoin> joins;
  FindAndRewrite(stmt->where.get(), &joins);
  for (auto& pj : joins) {
    // Build: (select corr_col, agg(..) as agg_alias from T [where local]
    //         group by corr_col) as derived_alias
    auto derived = std::make_unique<SelectStmt>();
    derived->items.emplace_back(
        sql::MakeColumnRef("", pj.plan.inner_corr_col), "");
    derived->items.emplace_back(std::move(pj.plan.agg_call), pj.agg_alias);
    derived->from = sql::MakeBaseTable(pj.plan.inner_table);
    derived->where = sql::AndAll(std::move(pj.plan.local_filters));
    derived->group_by.push_back(
        sql::MakeColumnRef("", pj.plan.inner_corr_col));

    auto on = sql::MakeBinary(
        sql::BinaryOp::kEq,
        sql::MakeColumnRef(pj.derived_alias, pj.plan.inner_corr_col),
        std::move(pj.plan.outer_ref));
    stmt->from = sql::MakeJoin(
        sql::JoinType::kInner, std::move(stmt->from),
        sql::MakeDerivedTable(std::move(derived), pj.derived_alias),
        std::move(on));
  }
  return static_cast<int>(joins.size());
}

}  // namespace vdb::core
