// Sample planning (paper Appendix E): choose, per base relation of a query,
// the sample table (or the base table itself) that maximizes a score =
// sqrt(effective sampling ratio) * advantage factors, subject to a per-table
// I/O budget, with top-k heuristic pruning.

#ifndef VDB_CORE_SAMPLE_PLANNER_H_
#define VDB_CORE_SAMPLE_PLANNER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/options.h"
#include "core/query_classifier.h"
#include "sampling/sample_types.h"

namespace vdb::core {

/// Assignment for a single relation (by alias).
struct RelationChoice {
  std::string alias;
  /// Empty sample_table => use the base table (ratio 1, prob column absent).
  sampling::SampleInfo sample;
  bool sampled = false;
};

struct SamplePlan {
  std::map<std::string, RelationChoice> choices;  // keyed by alias
  /// Effective sampling ratio of the dominant sampled relation(s): min of
  /// hashed ratios for universe-joins, product/ratio otherwise.
  double effective_ratio = 1.0;
  double score = 0.0;
  /// Total tuples the rewritten query will read.
  double io_cost = 0.0;
  int sampled_relations = 0;

  bool UsesSamples() const { return sampled_relations > 0; }
};

struct PlannerStats {
  int candidates_enumerated = 0;
  int candidates_pruned = 0;
};

class SamplePlanner {
 public:
  SamplePlanner(const VerdictOptions& options,
                std::vector<sampling::SampleInfo> available)
      : options_(options), available_(std::move(available)) {}

  /// Plans samples for a classified query. `group_cardinality_hint` (optional,
  /// <=0 to ignore) is the estimated number of output groups; plans whose
  /// expected tuples-per-group falls below options.min_tuples_per_group are
  /// rejected — in that case a non-sampled plan is returned (AQP infeasible,
  /// matching tq-3/8/15 behaviour in the paper).
  Result<SamplePlan> Plan(const QueryClass& qc,
                          const std::map<std::string, uint64_t>& base_rows,
                          int64_t group_cardinality_hint = 0);

  const PlannerStats& stats() const { return stats_; }

 private:
  const VerdictOptions& options_;
  std::vector<sampling::SampleInfo> available_;
  PlannerStats stats_;
};

}  // namespace vdb::core

#endif  // VDB_CORE_SAMPLE_PLANNER_H_
