// The AQP Rewriter (paper §4, §5, Appendix G): converts a supported
// aggregate query plus a sample plan into a single SQL statement whose
// standard relational execution produces, per output group, an unbiased
// approximate answer and a variational-subsampling error estimate.
//
// Shape of the rewritten query (Appendix G, Query 9):
//
//   select g..., sum(e_k * ssize)/sum(ssize) as <agg>,
//          stddev(e_k)*sqrt(avg(ssize))/sqrt(sum(ssize)) as <agg>_err
//   from (select g..., <per-subsample unbiased estimates> as e_k,
//                <sid expr> as __vdb_sid, count(*) as __vdb_ssize
//         from <FROM with samples substituted> where ...
//         group by g..., <sid expr>) as __vdb_vt
//   group by g...
//
// Subsample ids come from (a) `1 + floor(rand()*b)` for uniform/stratified
// samples (§4.2, Query 3) — rand() is row-addressed (common/random.h), so
// the sid assignment is a pure function of the sample row and the query
// seed, and the rewritten query runs fully on the vectorized
// morsel-parallel substrate — (b) hash blocks of the universe column for
// hashed samples (count-distinct and universe joins), or (c) the
// recombination function h(i,j) of Theorem 4 when two independently-sampled
// relations are joined.

#ifndef VDB_CORE_REWRITER_H_
#define VDB_CORE_REWRITER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/options.h"
#include "core/query_classifier.h"
#include "core/sample_planner.h"
#include "sql/ast.h"

namespace vdb::core {

/// Description of one output column of the rewritten query.
struct RewrittenColumn {
  enum class Kind { kGroup, kEstimate, kError };
  Kind kind = Kind::kGroup;
  std::string name;
  /// kError: ordinal of the estimate column this error belongs to.
  int estimate_column = -1;
};

struct RewriteResult {
  std::unique_ptr<sql::SelectStmt> rewritten;
  std::vector<RewrittenColumn> columns;
  int b = 0;                    // number of subsamples
  double effective_ratio = 1.0;
};

class AqpRewriter {
 public:
  explicit AqpRewriter(const VerdictOptions& options) : options_(options) {}

  /// Rewrites a flat (non-nested) aggregate query.
  Result<RewriteResult> RewriteFlat(const sql::SelectStmt& original,
                                    const QueryClass& qc,
                                    const SamplePlan& plan);

  /// Rewrites the §5.2 nested pattern: an aggregate over a derived table
  /// that is itself a supported aggregate query. `qc_inner`/`plan_inner`
  /// describe the inner query; samples substitute into the inner FROM and
  /// the subsample structure is pushed down per Equation 6 / Query 7.
  ///
  /// `inner_group_hint` (estimated inner group count, <= 0 to ignore) caps b
  /// so that (group, sid) cells stay dense — sparse cells would bias the
  /// outer statistic toward occupied cells. Returns kUnsupported when even
  /// b = 4 cannot keep cells dense (the query then passes through).
  Result<RewriteResult> RewriteNested(const sql::SelectStmt& original,
                                      const QueryClass& qc_outer,
                                      const QueryClass& qc_inner,
                                      const SamplePlan& plan_inner,
                                      int64_t inner_group_hint = 0);

  /// Chooses the number of subsamples b for a sample of `sample_rows` rows:
  /// the paper's default ns = n^(1/2) implies b = n / ns = n^(1/2); b is
  /// rounded to a perfect square so the join recombination h(i,j) of
  /// Theorem 4 partitions exactly.
  int ChooseB(uint64_t sample_rows) const;

 private:
  const VerdictOptions& options_;
};

}  // namespace vdb::core

#endif  // VDB_CORE_REWRITER_H_
