#include "core/sample_planner.h"

#include <algorithm>
#include <cmath>

namespace vdb::core {

namespace {

using sampling::SampleInfo;
using sampling::SampleType;

/// One candidate choice for a relation during enumeration.
struct Candidate {
  const SampleInfo* sample = nullptr;  // null => base table
  double ratio = 1.0;
  double rows = 0.0;
};

/// True if `edge` connects aliases a and b (either direction), returning the
/// join columns on each side.
bool EdgeBetween(const JoinEdge& e, const std::string& a, const std::string& b,
                 std::string* a_col, std::string* b_col) {
  if (e.left_alias == a && e.right_alias == b) {
    *a_col = e.left_column;
    *b_col = e.right_column;
    return true;
  }
  if (e.left_alias == b && e.right_alias == a) {
    *a_col = e.right_column;
    *b_col = e.left_column;
    return true;
  }
  return false;
}

}  // namespace

Result<SamplePlan> SamplePlanner::Plan(
    const QueryClass& qc, const std::map<std::string, uint64_t>& base_rows,
    int64_t group_cardinality_hint) {
  // Per-relation candidate lists.
  struct RelCands {
    const RelationInfo* rel;
    std::vector<Candidate> cands;
  };
  std::vector<RelCands> rels;
  for (const auto& r : qc.relations) {
    RelCands rc;
    rc.rel = &r;
    Candidate base;
    auto it = base_rows.find(r.alias);
    base.rows = it == base_rows.end() ? 0.0 : static_cast<double>(it->second);
    rc.cands.push_back(base);
    if (!r.is_derived) {
      for (const auto& s : available_) {
        if (s.base_table != r.base_table) continue;
        // Small tables are never sampled (paper §2.4: only tables above the
        // size threshold have an I/O budget).
        if (static_cast<int64_t>(s.base_rows) <
            options_.min_rows_for_sampling) {
          continue;
        }
        // count(distinct x): the relation owning x must be base or hashed
        // on x. Conservatively require hashed-on-x for any sampled relation
        // when the query has count-distinct.
        if (qc.has_count_distinct &&
            !(s.type == SampleType::kHashed && s.columns.size() == 1 &&
              s.columns[0] == qc.count_distinct_column)) {
          continue;
        }
        Candidate c;
        c.sample = &s;
        c.ratio = s.ratio;
        c.rows = static_cast<double>(s.sample_rows);
        rc.cands.push_back(c);
      }
    }
    // Heuristic pruning (Appendix E.2): keep the base table plus the top-k
    // samples by sqrt(ratio).
    if (options_.planner_top_k > 0 &&
        static_cast<int>(rc.cands.size()) > options_.planner_top_k + 1) {
      std::sort(rc.cands.begin() + 1, rc.cands.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.ratio > b.ratio;
                });
      stats_.candidates_pruned += static_cast<int>(rc.cands.size()) - 1 -
                                  options_.planner_top_k;
      rc.cands.resize(static_cast<size_t>(1 + options_.planner_top_k));
    }
    rels.push_back(std::move(rc));
  }

  // Exhaustive product over (pruned) candidates. Relation counts are small
  // (<= 6 in the workloads), so this is cheap.
  std::vector<size_t> pick(rels.size(), 0);
  SamplePlan best;
  best.score = -1.0;

  auto evaluate = [&]() {
    ++stats_.candidates_enumerated;
    // Gather sampled relations.
    std::vector<size_t> sampled;
    for (size_t i = 0; i < rels.size(); ++i) {
      if (rels[i].cands[pick[i]].sample != nullptr) sampled.push_back(i);
    }
    if (sampled.size() > 2) return;  // sid recombination handles two samples

    double effective = 1.0;
    double advantage = 1.0;
    if (sampled.size() == 1) {
      effective = rels[sampled[0]].cands[pick[sampled[0]]].ratio;
    } else if (sampled.size() == 2) {
      const auto& ra = rels[sampled[0]];
      const auto& rb = rels[sampled[1]];
      const SampleInfo* sa = ra.cands[pick[sampled[0]]].sample;
      const SampleInfo* sb = rb.cands[pick[sampled[1]]].sample;
      // Two sampled relations must be universe (hashed) samples joined on
      // their hash column (paper §5.1 and Aqua/Quickr strategies).
      if (sa->type != SampleType::kHashed || sb->type != SampleType::kHashed) {
        return;
      }
      bool joined_on_hash_col = false;
      for (const auto& e : qc.join_edges) {
        std::string ca, cb;
        if (EdgeBetween(e, ra.rel->alias, rb.rel->alias, &ca, &cb)) {
          if (sa->columns.size() == 1 && sb->columns.size() == 1 &&
              sa->columns[0] == ca && sb->columns[0] == cb) {
            joined_on_hash_col = true;
            break;
          }
        }
      }
      if (!joined_on_hash_col) return;
      // Universe-joined hashed samples retain min(r_a, r_b) of the join.
      effective = std::min(sa->ratio, sb->ratio);
    }

    // Per-table I/O budget check (§2.4): every table above the sampling
    // threshold may contribute at most io_budget of its rows. A sampled
    // plan that still scans some large base relation in full violates the
    // budget and is rejected; dimension-sized tables are exempt.
    double io_cost = 0.0;
    for (size_t i = 0; i < rels.size(); ++i) {
      const Candidate& c = rels[i].cands[pick[i]];
      io_cost += c.rows;
      if (c.sample == nullptr && !rels[i].rel->is_derived) {
        auto it = base_rows.find(rels[i].rel->alias);
        uint64_t n = it == base_rows.end() ? 0 : it->second;
        if (static_cast<int64_t>(n) >= options_.min_rows_for_sampling &&
            !sampled.empty()) {
          return;  // large relation read in full: over budget
        }
      } else if (c.sample != nullptr) {
        // The sample itself must fit the per-table budget.
        double budget = options_.io_budget *
                        static_cast<double>(c.sample->base_rows);
        if (c.rows > budget * 1.5) return;  // 50% slack for stratified
      }
    }

    // Advantage factors: stratified sample covering the count-distinct-free
    // group-by gets a boost; hashed sample matching count-distinct column is
    // required (filtered above) and also boosted.
    for (size_t i : sampled) {
      const SampleInfo* s = rels[i].cands[pick[i]].sample;
      if (s->type == SampleType::kStratified) advantage *= 1.5;
      if (qc.has_count_distinct && s->type == SampleType::kHashed) {
        advantage *= 1.5;
      }
    }

    // Expected tuples per group: reject plans that would leave groups
    // starved (the high-cardinality-group condition) — unless a stratified
    // sample covering the grouping columns guarantees per-stratum minima.
    if (!sampled.empty() && group_cardinality_hint > 0) {
      bool stratified_covers_groups = false;
      if (!qc.group_columns.empty()) {
        for (size_t i : sampled) {
          const SampleInfo* s = rels[i].cands[pick[i]].sample;
          if (s->type != SampleType::kStratified) continue;
          bool covers = true;
          for (const auto& g : qc.group_columns) {
            if (std::find(s->columns.begin(), s->columns.end(), g) ==
                s->columns.end()) {
              covers = false;
              break;
            }
          }
          if (covers) {
            stratified_covers_groups = true;
            break;
          }
        }
      }
      if (!stratified_covers_groups) {
        double sample_tuples = 0.0;
        for (size_t i : sampled) sample_tuples += rels[i].cands[pick[i]].rows;
        if (sample_tuples / static_cast<double>(group_cardinality_hint) <
            static_cast<double>(options_.min_tuples_per_group)) {
          return;
        }
      }
    }

    double score = sampled.empty() ? 0.0 : std::sqrt(effective) * advantage;
    // Prefer sampled plans; scores within 2% are treated as ties (realized
    // sampling ratios jitter around tau) and broken by cheaper I/O.
    bool better = score > best.score * 1.02 + 1e-12 ||
                  (score > best.score * 0.98 && io_cost < best.io_cost);
    if (better) {
      SamplePlan plan;
      for (size_t i = 0; i < rels.size(); ++i) {
        RelationChoice ch;
        ch.alias = rels[i].rel->alias;
        const Candidate& c = rels[i].cands[pick[i]];
        if (c.sample != nullptr) {
          ch.sample = *c.sample;
          ch.sampled = true;
          ++plan.sampled_relations;
        }
        plan.choices[ch.alias] = std::move(ch);
      }
      plan.effective_ratio = effective;
      plan.score = score;
      plan.io_cost = io_cost;
      best = std::move(plan);
      best.score = score;
    }
  };

  // Odometer enumeration.
  for (;;) {
    evaluate();
    size_t i = 0;
    while (i < rels.size() && ++pick[i] >= rels[i].cands.size()) {
      pick[i] = 0;
      ++i;
    }
    if (i >= rels.size()) break;
  }

  if (best.score < 0) {
    return Status::Internal("sample planner produced no plan");
  }
  return best;
}

}  // namespace vdb::core
