// Decides whether a query can be approximated (paper §2.2, Table 1) and
// extracts the structural facts the sample planner needs.

#ifndef VDB_CORE_QUERY_CLASSIFIER_H_
#define VDB_CORE_QUERY_CLASSIFIER_H_

#include <string>
#include <vector>

#include "sql/ast.h"

namespace vdb::core {

/// One relation appearing in the FROM tree.
struct RelationInfo {
  std::string alias;       // effective name (alias or table name), lowercase
  std::string base_table;  // empty for derived tables
  bool is_derived = false;
  const sql::SelectStmt* derived = nullptr;
};

/// An equi-join edge between two relations.
struct JoinEdge {
  std::string left_alias, left_column;
  std::string right_alias, right_column;
};

struct QueryClass {
  bool supported = false;  // can VerdictDB speed it up?
  std::string reason;      // populated when unsupported

  bool has_mean_like = false;  // count/sum/avg/var/stddev/quantile/UDA
  bool has_extreme = false;    // min/max
  bool has_count_distinct = false;
  std::string count_distinct_column;  // unqualified column of count(distinct)

  /// True if the FROM clause is a single derived table that is itself a
  /// supported aggregate query (paper §5.2 nested pattern).
  bool nested_aggregate = false;

  std::vector<RelationInfo> relations;
  std::vector<JoinEdge> join_edges;

  /// Unqualified names of plain-column GROUP BY expressions (empty entry-
  /// free; expression group-bys are not listed). Used by the planner's
  /// stratified-sample advantage and feasibility checks.
  std::vector<std::string> group_columns;
};

/// Classifies a SELECT. Unsupported queries pass through to the underlying
/// database unchanged (they see no speedup but still succeed).
QueryClass ClassifyQuery(const sql::SelectStmt& stmt);

}  // namespace vdb::core

#endif  // VDB_CORE_QUERY_CLASSIFIER_H_
