#include "core/query_classifier.h"

#include <algorithm>
#include <cctype>

#include "engine/functions.h"

namespace vdb::core {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::SelectStmt;
using sql::TableRef;

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool IsExtremeAgg(const std::string& name) {
  return name == "min" || name == "max";
}

/// Walks an expression tree recording aggregate kinds and rejecting
/// constructs VerdictDB does not approximate.
void ScanExpr(const Expr& e, QueryClass* qc) {
  if (e.kind == ExprKind::kExists) {
    qc->supported = false;
    qc->reason = "EXISTS subqueries are not supported";
    return;
  }
  if (e.kind == ExprKind::kFunction && !e.is_window &&
      vdb::engine::IsAggregateFunction(e.name)) {
    if (IsExtremeAgg(e.name)) {
      qc->has_extreme = true;
    } else if (e.name == "count" && e.distinct) {
      qc->has_count_distinct = true;
      if (!e.args.empty() && e.args[0]->kind == ExprKind::kColumnRef) {
        qc->count_distinct_column = ToLower(e.args[0]->name);
      }
      qc->has_mean_like = true;  // treated as a mean-like statistic
    } else {
      qc->has_mean_like = true;
    }
  }
  if (e.kind == ExprKind::kFunction && e.is_window) {
    qc->supported = false;
    qc->reason = "window functions in user queries are not approximated";
    return;
  }
  for (const auto& a : e.args) {
    if (a) ScanExpr(*a, qc);
  }
  for (const auto& w : e.case_whens) ScanExpr(*w, qc);
  for (const auto& t : e.case_thens) ScanExpr(*t, qc);
  if (e.case_else) ScanExpr(*e.case_else, qc);
}

/// Collects relations and join edges from the FROM tree.
void ScanFrom(const TableRef& ref, QueryClass* qc) {
  switch (ref.kind) {
    case TableRef::Kind::kBase: {
      RelationInfo ri;
      ri.alias = ToLower(ref.EffectiveName());
      ri.base_table = ToLower(ref.table_name);
      qc->relations.push_back(std::move(ri));
      return;
    }
    case TableRef::Kind::kDerived: {
      RelationInfo ri;
      ri.alias = ToLower(ref.alias);
      ri.is_derived = true;
      ri.derived = ref.derived.get();
      qc->relations.push_back(std::move(ri));
      return;
    }
    case TableRef::Kind::kJoin: {
      ScanFrom(*ref.left, qc);
      ScanFrom(*ref.right, qc);
      if (ref.join_type != sql::JoinType::kInner) {
        qc->supported = false;
        qc->reason = "only inner equi-joins are approximated";
        return;
      }
      // Extract equi edges from the ON conjuncts.
      std::vector<const Expr*> stack = {ref.on.get()};
      while (!stack.empty()) {
        const Expr* e = stack.back();
        stack.pop_back();
        if (e == nullptr) continue;
        if (e->kind == ExprKind::kBinary &&
            e->binary_op == sql::BinaryOp::kAnd) {
          stack.push_back(e->args[0].get());
          stack.push_back(e->args[1].get());
          continue;
        }
        if (e->kind == ExprKind::kBinary &&
            e->binary_op == sql::BinaryOp::kEq &&
            e->args[0]->kind == ExprKind::kColumnRef &&
            e->args[1]->kind == ExprKind::kColumnRef) {
          JoinEdge edge;
          edge.left_alias = ToLower(e->args[0]->qualifier);
          edge.left_column = ToLower(e->args[0]->name);
          edge.right_alias = ToLower(e->args[1]->qualifier);
          edge.right_column = ToLower(e->args[1]->name);
          qc->join_edges.push_back(std::move(edge));
        }
      }
      return;
    }
  }
}

/// A derived table in FROM qualifies as the paper's nested-aggregate pattern
/// if it is itself a supported flat aggregate query over base tables.
bool IsSupportedFlatAggregate(const SelectStmt& s) {
  QueryClass inner = ClassifyQuery(s);
  if (!inner.supported || inner.nested_aggregate) return false;
  for (const auto& r : inner.relations) {
    if (r.is_derived) return false;
  }
  return true;
}

}  // namespace

QueryClass ClassifyQuery(const SelectStmt& stmt) {
  QueryClass qc;
  qc.supported = true;

  if (stmt.union_next) {
    qc.supported = false;
    qc.reason = "UNION queries pass through";
    return qc;
  }
  if (stmt.distinct) {
    qc.supported = false;
    qc.reason = "SELECT DISTINCT passes through";
    return qc;
  }
  if (!stmt.from) {
    qc.supported = false;
    qc.reason = "constant SELECT";
    return qc;
  }

  for (const auto& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      qc.supported = false;
      qc.reason = "SELECT * has no aggregates to approximate";
      return qc;
    }
    ScanExpr(*item.expr, &qc);
    if (!qc.supported) return qc;
  }
  if (stmt.where) {
    ScanExpr(*stmt.where, &qc);
    if (!qc.supported) return qc;
  }
  if (stmt.having) {
    ScanExpr(*stmt.having, &qc);
    if (!qc.supported) return qc;
  }

  ScanFrom(*stmt.from, &qc);
  if (!qc.supported) return qc;

  for (const auto& g : stmt.group_by) {
    if (g->kind == ExprKind::kColumnRef) {
      qc.group_columns.push_back(ToLower(g->name));
    }
  }

  if (!qc.has_mean_like) {
    qc.supported = false;
    qc.reason = qc.has_extreme
                    ? "only extreme statistics (min/max); not approximated"
                    : "no aggregate functions";
    return qc;
  }

  // Derived tables are allowed only in the single-relation nested-aggregate
  // pattern (§5.2).
  size_t derived = 0;
  for (const auto& r : qc.relations) {
    if (r.is_derived) ++derived;
  }
  if (derived > 0) {
    if (qc.relations.size() == 1 && qc.relations[0].is_derived &&
        IsSupportedFlatAggregate(*qc.relations[0].derived)) {
      qc.nested_aggregate = true;
    } else if (derived < qc.relations.size()) {
      // Derived tables joined with base tables (e.g. produced by subquery
      // flattening) are fine: they are executed exactly, never sampled.
    } else {
      qc.supported = false;
      qc.reason = "unsupported derived-table shape";
      return qc;
    }
  }
  return qc;
}

}  // namespace vdb::core
