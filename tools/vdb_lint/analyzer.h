// vdb-lint structural analyzer: a preprocessor-aware C++ tokenizer feeding a
// brace-matched scope tree, still with no libclang dependency.
//
// The tree is deliberately approximate — it has to survive real C++ (nested
// lambdas, init-lists, template angle brackets, macros whose bodies span
// braces) without ever crashing or mis-nesting the scopes the rules care
// about. What it guarantees:
//
//   * every `{` opens exactly one Scope and every `}` closes the innermost
//     open one (stray closers from macro tricks pop at most to file scope);
//   * preprocessor lines never contribute tokens or braces (so a `#define`
//     whose body opens a brace cannot skew the tree), but `#include` targets
//     are recorded;
//   * comments / string / char / raw-string literals never contribute tokens,
//     while `// vdb-lint: allow(...)` trailers are parsed into a suppression
//     table with per-entry hit counts (for stale-suppression detection);
//   * each scope knows its kind (namespace / class / enum / function /
//     lambda / loop / block), its parent, its line span and its token span;
//   * each function (and file-scope lambda) carries a fact set: names it
//     calls, members it touches — the inputs for flow-ish rules like
//     ungoverned-loop and unordered-iteration-in-result-path;
//   * range-based `for` statements are extracted with the token span of
//     their range expression;
//   * variables declared with an unordered container type (locals, params,
//     members — anywhere in the file) are collected by name;
//   * classes whose every data member is atomic / Mutex-wrapped / const are
//     marked "sync-safe" so `static Dispatch d;` style singletons of
//     all-atomic structs don't trip mutable-shared-static.

#ifndef VDB_TOOLS_VDB_LINT_ANALYZER_H_
#define VDB_TOOLS_VDB_LINT_ANALYZER_H_

#include <cstddef>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace vdb::lint {

enum class TokKind { kIdent, kPunct, kNumber };

struct Token {
  TokKind kind;
  std::string text;
  size_t line;
};

struct Include {
  std::string header;  // text between <> or "" in an #include
  size_t line;
};

/// One `// vdb-lint: allow(rule)` entry. `hits` counts how many diagnostics
/// it actually silenced, so unused (stale) suppressions can be reported.
struct Allow {
  size_t line;
  std::string rule;
  size_t hits = 0;
};

enum class ScopeKind {
  kFile,       // the implicit outermost scope
  kNamespace,  // namespace N { } / namespace { } / extern "C" { }
  kClass,      // class / struct / union definition body
  kEnum,       // enum / enum class body
  kFunction,   // function or method definition body
  kLambda,     // lambda body
  kLoop,       // for / range-for / while / do body
  kBlock,      // everything else: if/else/switch/try bodies, init-lists, ...
};

struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  int parent = -1;
  std::vector<int> children;
  std::string name;        // namespace / class / function name ("" otherwise)
  size_t open_line = 0;    // line of the `{`
  size_t first_token = 0;  // token index range of the body,
  size_t last_token = 0;   // half-open [first_token, last_token)
  int function_index = -1;     // into Analysis::functions for kFunction/kLambda
  int range_for_index = -1;    // into Analysis::range_fors for range-for kLoop
  bool loop_is_range_for = false;
};

/// A range-based for statement: `for (decl : range-expr) { ... }`.
struct RangeFor {
  size_t line = 0;          // line of the `for`
  int scope = -1;           // the kLoop scope it opens (-1 if braceless body)
  int enclosing_scope = -1; // scope the statement appears in
  size_t range_begin = 0;   // token span of the range expression,
  size_t range_end = 0;     // half-open
};

/// Per-function facts, collected over the function's whole token span
/// (nested lambdas and blocks included — a ParallelFor callback's body is
/// still this function's work).
struct FunctionInfo {
  int scope = -1;
  std::string name;        // unqualified ("" for lambdas)
  std::string class_name;  // enclosing class or `Class::` qualifier, "" if free
  std::set<std::string> calls;            // f(...), x.f(...), x->f(...)
  std::set<std::string> members_touched;  // idents after `.` or `->`
};

struct Analysis {
  std::vector<Token> tokens;
  std::vector<Include> includes;
  std::vector<Allow> allows;
  std::vector<Scope> scopes;       // scopes[0] is the file scope
  std::vector<int> token_scope;    // innermost scope index per token
  std::vector<RangeFor> range_fors;
  std::vector<FunctionInfo> functions;
  // Function name -> indices into `functions` (same-file overloads share).
  std::unordered_map<std::string, std::vector<int>> functions_by_name;
  // Names of variables declared anywhere in this file with an
  // unordered_map/unordered_set (multi- variants included) type.
  std::unordered_set<std::string> unordered_vars;
  // Classes defined in this file whose every data member is atomic/Mutex/
  // const — safe to instantiate as a shared static.
  std::unordered_set<std::string> sync_safe_classes;

  /// True if `name` (or anything transitively called from it, following
  /// same-file function definitions) calls one of `facts`.
  bool CallsTransitively(const std::string& name,
                         const std::unordered_set<std::string>& facts) const;

  /// Innermost enclosing function/lambda scope of `scope_index` (itself
  /// included), or -1.
  int EnclosingFunctionScope(int scope_index) const;
};

/// Tokenizes `src` and builds the scope tree + fact tables.
Analysis Analyze(const std::string& src);

}  // namespace vdb::lint

#endif  // VDB_TOOLS_VDB_LINT_ANALYZER_H_
