// SARIF golden-file input: three violations across three rules. The
// self-test lints this file under the pseudo-path src/engine/sarif_input.cc
// and compares ToSarif() byte-for-byte against golden.sarif.
#include <mutex>

namespace vdb::engine {

int g_hits = 0;

int Sample() { return rand(); }

}  // namespace vdb::engine
