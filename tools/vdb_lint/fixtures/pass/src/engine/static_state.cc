// Fixture counterpart to fail/src/engine/static_state.cc: every shape of
// engine-shared static the rule accepts — atomics, constants, and a leaked
// singleton of a class whose every data member is itself synchronized
// (detected as "sync-safe", so no allow() is needed).
#include <atomic>
#include <cstdint>

namespace vdb::engine {

std::atomic<uint64_t> g_counter{0};
constexpr int kMaxGroups = 1 << 20;

struct Telemetry {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
};

Telemetry& GlobalTelemetry() {
  static Telemetry t;
  return t;
}

}  // namespace vdb::engine
