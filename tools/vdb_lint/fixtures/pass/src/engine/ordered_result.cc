// Fixture counterpart to fail/src/engine/unordered_result.cc: the two
// sanctioned ways to emit grouped output deterministically — iterate an
// ordered container, or collect the hash-table keys, sort them, and address
// the table by key. The collection loop itself iterates the unordered
// container, so it carries the counted allow() that documents why that is
// fine here.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace vdb::engine {

struct ResultSet {
  std::vector<int> vals;
  void AppendValue(int v) { vals.push_back(v); }
};

void EmitGroupsOrdered(const std::map<int, int>& by_key, ResultSet* out) {
  for (const auto& [k, v] : by_key) out->AppendValue(v);
}

void EmitGroupsSorted(const std::unordered_map<int, int>& groups,
                      ResultSet* out) {
  std::vector<int> keys;
  for (const auto& [k, v] : groups) keys.push_back(k);  // vdb-lint: allow(unordered-iteration-in-result-path) keys sorted below before emission
  std::sort(keys.begin(), keys.end());
  for (int k : keys) out->AppendValue(groups.at(k));
}

}  // namespace vdb::engine
