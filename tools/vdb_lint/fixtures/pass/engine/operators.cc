// Fixture counterpart to fail/engine/operators.cc: emit loops in governed
// TUs pass when a guard poll is reachable (here: GuardCheck at the top of
// the enclosing function), or when the loop is provably not
// row-proportional and says so with a counted allow().
#include <vector>

namespace vdb::engine {

struct Status {
  bool ok() const { return true; }
};

Status GuardCheck();

Status Materialize(const std::vector<int>& rows, std::vector<int>* out) {
  Status st = GuardCheck();
  if (!st.ok()) return st;
  for (int r : rows) {
    out->push_back(r);
  }
  return st;
}

void CopyFixedHeader(std::vector<int>* out) {
  for (int i = 0; i < 4; ++i) {  // vdb-lint: allow(ungoverned-loop) fixed four-slot header, not row-proportional
    out->push_back(i);
  }
}

}  // namespace vdb::engine
