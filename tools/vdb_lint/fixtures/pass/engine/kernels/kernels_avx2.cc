// Fixture: a file whose path ends in engine/kernels/kernels_avx2.cc — the
// one TU where intrinsics are allowed, so none of this may be flagged.
#include <immintrin.h>

namespace fixture {

long long SumLanes(const long long* p) {
  __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  __m256i s = _mm256_add_epi64(v, v);
  long long out[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), s);
  return out[0] + out[1] + out[2] + out[3];
}

}  // namespace fixture
