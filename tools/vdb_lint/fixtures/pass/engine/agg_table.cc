// Fixture: reserve/resize in a governed TU lints clean when the exemption is
// acknowledged in place with an allow() naming the naked-reserve rule.
#include <cstddef>
#include <vector>

namespace fixture {

void Grow(std::vector<int>* rows, std::size_t n) {
  rows->reserve(n);  // vdb-lint: allow(naked-reserve) fixture: charged by caller
  std::vector<int> scratch;
  scratch.resize(64);  // vdb-lint: allow(naked-reserve) fixture: fixed scratch
  (void)scratch;
}

}  // namespace fixture
