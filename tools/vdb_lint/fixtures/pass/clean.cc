// Fixture: clean file — no rule fires. Mentions of banned names inside
// comments and string literals must be ignored by the tokenizer:
// rand() srand(1) std::mt19937 _mm256_add_epi64 <immintrin.h>
#include "common/random.h"

#include <cstdint>
#include <string>

namespace fixture {

const char* kMessage = "call rand() and _mm256_setzero_si256() today!";
const char* kRaw = R"delim(std::mt19937 gen; gen(); // still a string)delim";

double Draw(vdb::Rng& rng) { return rng.NextDouble(); }

uint64_t SafeCount(const std::string& s) { return s.size(); }

}  // namespace fixture
