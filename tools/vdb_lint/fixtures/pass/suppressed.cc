// Fixture: violations acknowledged in place with allow() comments — the
// file must lint clean, and each honored allow() must be counted.
#include <cstdlib>

namespace fixture {

int LegacyDraw() {
  return rand();  // vdb-lint: allow(rng-outside-random) fixture: legacy shim
}

int LegacySeedAndDraw() {
  srand(42);  // vdb-lint: allow(rng-outside-random) fixture: legacy shim
  return rand();  // vdb-lint: allow(rng-outside-random) fixture: legacy shim
}

}  // namespace fixture
