// Fixture counterpart to fail/raw_mutex.cc: the CAPABILITY-annotated
// wrappers from common/thread_annotations.h pass everywhere — they are the
// primitives -Wthread-safety can actually check.
#include "common/thread_annotations.h"

namespace vdb {

class Registry {
 public:
  void Add(int v) {
    MutexLock lock(mu_);
    total_ += v;
  }

 private:
  Mutex mu_;
  int total_ GUARDED_BY(mu_) = 0;
};

}  // namespace vdb
