// Fixture: naked-reserve must fire on uncharged reserve/resize in a governed
// TU (path ends in engine/join_table.cc): dot and arrow member forms both
// count; a free function that happens to be named reserve does not.
#include <cstddef>
#include <vector>

namespace fixture {

void reserve(std::size_t n);

void Build(std::vector<int>* rows, std::size_t n) {
  std::vector<int> local;
  local.reserve(n);  // fires: dot form
  rows->resize(n);   // fires: arrow form
  rows->reserve(n);  // fires: arrow form
  reserve(n);        // does not fire: not a member call
}

}  // namespace fixture
