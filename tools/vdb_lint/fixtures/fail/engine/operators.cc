// Fixture: a row-proportional emit loop in a governed TU with no ExecGuard
// poll reachable from the loop body or its enclosing function. Expected:
// ungoverned-loop at the loop head.
#include <vector>

namespace vdb::engine {

void Materialize(const std::vector<int>& rows, std::vector<int>* out) {
  for (int r : rows) {
    out->push_back(r);
  }
}

}  // namespace vdb::engine
