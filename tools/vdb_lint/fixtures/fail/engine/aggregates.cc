// Fixture: raw-double-accumulate must fire on the three raw accumulator
// updates (path ends in engine/aggregates.cc), but not on the local `total`.
namespace fixture {

struct Acc {
  double sum_ = 0.0;
  double comp_ = 0.0;
  double sums[4] = {0, 0, 0, 0};

  void Add(double x) {
    sum_ += x;       // fires
    comp_ += 0.0;    // fires
    sums[1] += x;    // fires
    double total = 0.0;
    total += x;      // does not fire: not an accumulator member name
    (void)total;
  }
};

}  // namespace fixture
