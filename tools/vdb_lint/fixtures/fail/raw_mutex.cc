// Fixture: raw std:: synchronization primitives. Expected: raw-mutex for
// the <mutex> include and for each banned identifier (mutex twice,
// lock_guard once) — raw primitives are invisible to -Wthread-safety.
#include <mutex>

namespace vdb {

std::mutex g_mu;

void Touch() {
  std::lock_guard<std::mutex> lock(g_mu);
  (void)lock;
}

}  // namespace vdb
