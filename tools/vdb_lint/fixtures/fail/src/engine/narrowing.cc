// Fixture: naked-size-narrowing must fire on both the dot and arrow forms,
// but not on the uint64_t cast or the non-size cast.
#include <cstdint>
#include <vector>

namespace fixture {

uint32_t Bad(const std::vector<int>& v) {
  return static_cast<uint32_t>(v.size());  // fires
}

uint32_t BadArrow(const std::vector<int>* v) {
  return static_cast<uint32_t>(v->size());  // fires
}

uint64_t FineWide(const std::vector<int>& v) {
  return static_cast<uint64_t>(v.size());  // does not fire: no narrowing
}

uint32_t FineScalar(long long x) {
  return static_cast<uint32_t>(x);  // does not fire: not a .size() call
}

}  // namespace fixture
