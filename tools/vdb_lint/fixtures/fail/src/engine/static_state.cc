// Fixture: unsynchronized shared mutable state under src/engine/.
// Expected: mutable-shared-static for the namespace-scope global and for
// the function-local static — neither is atomic, Mutex-guarded, or const.
namespace vdb::engine {

int g_call_count = 0;

int NextId() {
  static int next = 0;
  return ++next;
}

}  // namespace vdb::engine
