// Fixture: range-for over an unordered container inside a result-producing
// function. Expected: unordered-iteration-in-result-path at the loop head —
// hash iteration order would decide the output row order.
#include <unordered_map>
#include <vector>

namespace vdb::engine {

struct ResultSet {
  std::vector<int> vals;
  void AppendValue(int v) { vals.push_back(v); }
};

void EmitGroups(const std::unordered_map<int, int>& groups, ResultSet* out) {
  for (const auto& [k, v] : groups) {
    out->AppendValue(v);
  }
}

}  // namespace vdb::engine
