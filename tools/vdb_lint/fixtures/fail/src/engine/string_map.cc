// Fixture: string-keyed-map must fire on both containers (path contains
// src/engine/), but NOT on the int-keyed map.
#include <map>
#include <string>
#include <unordered_map>

namespace fixture {

struct PerRowState {
  std::map<std::string, long long> counts;            // fires
  std::unordered_map<std::string, double> sums;       // fires
  std::map<int, double> by_ordinal;                   // does not fire
};

}  // namespace fixture
