// Fixture: rng-outside-random must fire on the engine construction, the
// libc calls, and the <random> include — 5 violations total.
#include <random>

namespace fixture {

int Draw() {
  static std::mt19937 gen(std::random_device{}());
  srand(7);
  return static_cast<int>(gen()) + rand();
}

}  // namespace fixture
