// Fixture: simd-outside-kernel-tu must fire — this path is not the AVX2 TU.
// Expected: 3 violations (the include, the __m256i type, the intrinsic).
#include <immintrin.h>

namespace fixture {

__m256i MakeZero() { return _mm256_setzero_si256(); }

}  // namespace fixture
