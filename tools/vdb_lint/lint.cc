#include "lint.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analyzer.h"

namespace vdb::lint {

namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

// ---------------------------------------------------------------------------
// Rule plumbing
// ---------------------------------------------------------------------------

struct Ctx {
  const std::string& path;  // slash-normalized
  Analysis& src;            // allow() hit counts mutate during Emit
  Report* report;
  RuleStat* stat = nullptr;  // the rule currently running

  bool PathEndsWith(const std::string& suffix) const {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
               0;
  }
  bool PathContains(const std::string& piece) const {
    return path.find(piece) != std::string::npos;
  }

  void Emit(const std::string& rule, size_t line, const std::string& message) {
    for (Allow& a : src.allows) {
      if (a.line == line && a.rule == rule) {
        ++a.hits;
        ++report->suppressions_used;
        if (stat != nullptr) ++stat->suppressions;
        return;
      }
    }
    report->violations.push_back({path, line, rule, message});
    if (stat != nullptr) ++stat->violations;
  }
};

// --- rng-outside-random -----------------------------------------------------
//
// Draws must route through the row-addressed substrate in common/random.*;
// a stray rand() or thread-local mt19937 reintroduces draw-order dependence
// and breaks run-to-run reproducibility of the parallel executor.
void RuleRngOutsideRandom(Ctx& ctx) {
  static const char* kRule = "rng-outside-random";
  if (ctx.PathEndsWith("common/random.h") ||
      ctx.PathEndsWith("common/random.cc")) {
    return;
  }
  static const std::unordered_set<std::string> kBanned = {
      "rand",          "srand",        "rand_r",
      "drand48",       "lrand48",      "srand48",
      "mt19937",       "mt19937_64",   "random_device",
      "minstd_rand",   "minstd_rand0", "default_random_engine",
      "ranlux24",      "ranlux48",     "knuth_b",
  };
  for (const Token& t : ctx.src.tokens) {
    if (t.kind == TokKind::kIdent && kBanned.count(t.text)) {
      ctx.Emit(kRule, t.line,
               "'" + t.text +
                   "' bypasses the row-addressed RNG; use vdb::Rng / RandAt "
                   "from common/random.h");
    }
  }
  for (const Include& inc : ctx.src.includes) {
    // <cstdlib> is fine by itself (exit, getenv, strtol live there); only
    // <random> implies an engine is about to be constructed.
    if (inc.header == "random") {
      ctx.Emit(kRule, inc.line,
               "#include <random> outside common/random.*; engines live "
               "behind vdb::Rng");
    }
  }
}

// --- simd-outside-kernel-tu -------------------------------------------------
//
// kernels_avx2.cc is the only TU compiled with -mavx2; an intrinsic anywhere
// else either SIGILLs on baseline CPUs or forces the flag onto the whole
// build.
void RuleSimdOutsideKernelTu(Ctx& ctx) {
  static const char* kRule = "simd-outside-kernel-tu";
  if (ctx.PathEndsWith("engine/kernels/kernels_avx2.cc")) return;
  static const std::unordered_set<std::string> kHeaders = {
      "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
      "avxintrin.h", "avx2intrin.h", "smmintrin.h", "tmmintrin.h",
      "nmmintrin.h", "pmmintrin.h",
  };
  for (const Include& inc : ctx.src.includes) {
    if (kHeaders.count(inc.header)) {
      ctx.Emit(kRule, inc.line,
               "#include <" + inc.header +
                   "> outside engine/kernels/kernels_avx2.cc (the only TU "
                   "built with -mavx2)");
    }
  }
  auto is_intrinsic = [](const std::string& s) {
    auto starts = [&s](const char* p) { return s.rfind(p, 0) == 0; };
    return starts("_mm_") || starts("_mm256_") || starts("_mm512_") ||
           starts("__m128") || starts("__m256") || starts("__m512");
  };
  for (const Token& t : ctx.src.tokens) {
    if (t.kind == TokKind::kIdent && is_intrinsic(t.text)) {
      ctx.Emit(kRule, t.line,
               "intrinsic '" + t.text +
                   "' outside engine/kernels/kernels_avx2.cc");
    }
  }
}

// --- string-keyed-map -------------------------------------------------------
//
// Under src/engine/ a std::map / std::unordered_map keyed by std::string is
// the per-row hash-map shape PRs 4/7 replaced with flat hashed tables; new
// ones are either a hot-path regression or plan-time metadata that should
// say so with an allow() comment.
void RuleStringKeyedMap(Ctx& ctx) {
  static const char* kRule = "string-keyed-map";
  if (!ctx.PathContains("src/engine/")) return;
  const std::vector<Token>& toks = ctx.src.tokens;
  for (size_t k = 0; k + 1 < toks.size(); ++k) {
    const Token& t = toks[k];
    if (t.kind != TokKind::kIdent ||
        (t.text != "map" && t.text != "unordered_map")) {
      continue;
    }
    if (!IsPunct(toks[k + 1], "<")) continue;
    // Scan the first template argument (depth-1 tokens up to the first ','
    // or the closing '>').
    int depth = 1;
    bool string_key = false;
    for (size_t j = k + 2; j < toks.size() && depth > 0; ++j) {
      const Token& u = toks[j];
      if (u.kind == TokKind::kPunct) {
        if (u.text == "<") ++depth;
        else if (u.text == ">") --depth;
        else if (u.text == "," && depth == 1) break;
        else if (u.text == ";" || u.text == "{") break;  // not a template
      } else if (u.kind == TokKind::kIdent && depth == 1 &&
                 u.text == "string") {
        string_key = true;
      }
    }
    if (string_key) {
      ctx.Emit(kRule, t.line,
               "std::" + t.text +
                   " keyed by std::string in src/engine/; hot paths use the "
                   "flat hashed tables (agg_table.h / join_table.h)");
    }
  }
}

// --- raw-double-accumulate --------------------------------------------------
//
// In the aggregate kernels, `+=` straight onto a sum/comp accumulator member
// skips Neumaier compensation, so 1-thread and N-thread results stop being
// bit-identical. All float accumulation goes through NeumaierAdd.
void RuleRawDoubleAccumulate(Ctx& ctx) {
  static const char* kRule = "raw-double-accumulate";
  if (!ctx.PathEndsWith("engine/aggregates.cc") &&
      !ctx.PathEndsWith("engine/agg_table.cc")) {
    return;
  }
  static const std::unordered_set<std::string> kAccumulators = {
      "sum", "sum_", "sums", "sums_", "comp", "comp_", "comps", "comps_",
  };
  const std::vector<Token>& toks = ctx.src.tokens;
  for (size_t k = 0; k < toks.size(); ++k) {
    if (!IsPunct(toks[k], "+=")) continue;
    // Walk left over a possible [index] to the target identifier.
    size_t j = k;
    if (j > 0 && IsPunct(toks[j - 1], "]")) {
      int depth = 1;
      --j;
      while (j > 0 && depth > 0) {
        --j;
        if (toks[j].kind == TokKind::kPunct) {
          if (toks[j].text == "]") ++depth;
          if (toks[j].text == "[") --depth;
        }
      }
    }
    if (j == 0) continue;
    const Token& target = toks[j - 1];
    if (target.kind == TokKind::kIdent && kAccumulators.count(target.text)) {
      ctx.Emit(kRule, toks[k].line,
               "raw '+=' on accumulator '" + target.text +
                   "'; route through NeumaierAdd to keep serial/parallel "
                   "results bit-identical");
    }
  }
}

// --- naked-size-narrowing ---------------------------------------------------
//
// Row ids narrow to uint32_t only behind the explicit 2^32 Status guards; a
// static_cast<uint32_t>(x.size()) with no allow() comment is a silent
// truncation waiting for a big table.
void RuleNakedSizeNarrowing(Ctx& ctx) {
  static const char* kRule = "naked-size-narrowing";
  if (!ctx.PathContains("src/engine/") && !ctx.PathContains("src/common/")) {
    return;
  }
  const std::vector<Token>& toks = ctx.src.tokens;
  for (size_t k = 0; k + 4 < toks.size(); ++k) {
    // static_cast < uint32_t > ( ... .size() ... )
    if (!IsIdent(toks[k], "static_cast")) continue;
    if (toks[k + 1].text != "<" || toks[k + 2].text != "uint32_t" ||
        toks[k + 3].text != ">" || toks[k + 4].text != "(") {
      continue;
    }
    int depth = 1;
    for (size_t j = k + 5; j < toks.size() && depth > 0; ++j) {
      const Token& u = toks[j];
      if (u.kind == TokKind::kPunct) {
        if (u.text == "(") ++depth;
        if (u.text == ")") --depth;
      } else if (u.kind == TokKind::kIdent && u.text == "size" && j >= 1 &&
                 (toks[j - 1].text == "." ||
                  (j >= 2 && toks[j - 1].text == ">" &&
                   toks[j - 2].text == "-")) &&
                 j + 1 < toks.size() && toks[j + 1].text == "(") {
        ctx.Emit(kRule, toks[k].line,
                 "static_cast<uint32_t>(...size()) without a 2^32 guard "
                 "acknowledgment; check the row count first (see "
                 "docs/INVARIANTS.md)");
        break;
      }
    }
  }
}

// The governed hot TUs: engine structures whose footprint and iteration
// counts are row-proportional, where PR 9 planted the budget charges and
// cancellation poll points. naked-reserve and ungoverned-loop share this
// scope.
bool InGovernedTu(const Ctx& ctx) {
  return ctx.PathEndsWith("engine/join_table.cc") ||
         ctx.PathEndsWith("engine/join_table.h") ||
         ctx.PathEndsWith("engine/agg_table.cc") ||
         ctx.PathEndsWith("engine/agg_table.h") ||
         ctx.PathEndsWith("engine/operators.cc");
}

// --- naked-reserve ----------------------------------------------------------
//
// In the governed hot TUs every reserve/resize must be budget-charged
// through ExecGuard::TryReserve (via Charge(), GuardTryReserve, or
// ScopedReservation) or carry an allow() naming the exemption: fixed-size
// chunk, column-count bounded, or charged by the caller. An unannotated
// reserve is how an over-budget query turns into an std::bad_alloc abort
// instead of a clean kResourceExhausted.
void RuleNakedReserve(Ctx& ctx) {
  static const char* kRule = "naked-reserve";
  if (!InGovernedTu(ctx)) return;
  const std::vector<Token>& toks = ctx.src.tokens;
  for (size_t k = 1; k + 1 < toks.size(); ++k) {
    const Token& t = toks[k];
    if (t.kind != TokKind::kIdent ||
        (t.text != "reserve" && t.text != "resize")) {
      continue;
    }
    if (!IsPunct(toks[k + 1], "(")) continue;
    // Member call only: `x.reserve(` or `x->reserve(` (the tokenizer emits
    // '-' and '>' as separate punctuation).
    const Token& prev = toks[k - 1];
    const bool member =
        prev.kind == TokKind::kPunct &&
        (prev.text == "." ||
         (prev.text == ">" && k >= 2 && IsPunct(toks[k - 2], "-")));
    if (!member) continue;
    ctx.Emit(kRule, t.line,
             "'" + t.text +
                 "' without a budget charge in a governed TU; route through "
                 "ExecGuard::TryReserve (Charge / GuardTryReserve / "
                 "ScopedReservation) or add an allow() with the exemption "
                 "rationale");
  }
}

// --- unordered-iteration-in-result-path -------------------------------------
//
// Iterating a hash table is the one bit-identity breaker no differential
// fuzz suite reliably catches: libstdc++'s iteration order is stable for a
// fixed build, so serial-vs-parallel comparisons pass locally and the
// nondeterminism only surfaces under a different standard library, hash
// seed, or allocation history. In the result-producing layers (src/engine,
// src/estimator, src/integrated, src/core) a range-for over an
// unordered_map/unordered_set inside a function that emits output rows must
// iterate sorted keys or index-addressed storage instead.
void RuleUnorderedIterationInResultPath(Ctx& ctx) {
  static const char* kRule = "unordered-iteration-in-result-path";
  if (!ctx.PathContains("src/engine/") && !ctx.PathContains("src/estimator/") &&
      !ctx.PathContains("src/integrated/") && !ctx.PathContains("src/core/")) {
    return;
  }
  static const std::unordered_set<std::string> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  // The facts that make a function "result-producing": it appends rows or
  // values to an output container, directly or through a same-file callee.
  static const std::unordered_set<std::string> kSinks = {
      "AppendRow",   "AppendValue",  "AppendRange", "AppendSelected",
      "Append",      "push_back",    "emplace_back", "AddRow",
  };
  const Analysis& src = ctx.src;
  for (const RangeFor& rf : src.range_fors) {
    bool unordered = false;
    for (size_t k = rf.range_begin; k < rf.range_end && !unordered; ++k) {
      const Token& t = src.tokens[k];
      if (t.kind != TokKind::kIdent) continue;
      if (kUnorderedTypes.count(t.text) || src.unordered_vars.count(t.text)) {
        unordered = true;
      }
    }
    if (!unordered) continue;
    const int fscope = src.EnclosingFunctionScope(rf.enclosing_scope);
    if (fscope < 0) continue;
    const FunctionInfo& fn = src.functions[static_cast<size_t>(
        src.scopes[static_cast<size_t>(fscope)].function_index)];
    bool result_producing = false;
    for (const std::string& call : fn.calls) {
      if (src.CallsTransitively(call, kSinks)) {
        result_producing = true;
        break;
      }
    }
    if (!result_producing) continue;
    ctx.Emit(kRule, rf.line,
             "range-for over an unordered container in result-producing "
             "function '" +
                 (fn.name.empty() ? std::string("<lambda>") : fn.name) +
                 "'; hash iteration order is nondeterministic — sort the "
                 "keys or address by index before emitting output");
  }
}

// --- ungoverned-loop --------------------------------------------------------
//
// PR 9's cancellation contract: every row-proportional site in a governed TU
// polls the ExecGuard (GuardCheck at batch boundaries, TryReserve before
// growth) so a cancel/deadline/budget trip unwinds promptly. A loop whose
// body emits per-row output but has no poll fact reachable — in its own
// body, through a same-file callee, through an enclosing loop, or anywhere
// in its enclosing function — is a new operator regressing that contract.
void RuleUngovernedLoop(Ctx& ctx) {
  static const char* kRule = "ungoverned-loop";
  if (!InGovernedTu(ctx)) return;
  static const std::unordered_set<std::string> kPolls = {
      "GuardCheck",        "GuardTryReserve",
      "TryReserve",        "Check",
      "ScopedReservation", "guard_status",
      "guard_status_",     "GatherGuarded",
      "ParallelForStatus", "ParallelMorselMapStatus"};
  static const std::unordered_set<std::string> kEmits = {
      "push_back", "emplace_back", "insert",        "Append",
      "AppendRow", "AppendRange",  "AppendSelected"};
  const Analysis& src = ctx.src;

  // A token span "reaches a poll" if it names one directly or calls a
  // same-file function whose transitive call facts include one.
  auto span_reaches_poll = [&](size_t first, size_t last) {
    for (size_t k = first; k < last; ++k) {
      const Token& t = src.tokens[k];
      if (t.kind != TokKind::kIdent) continue;
      if (kPolls.count(t.text)) return true;
      if (k + 1 < src.tokens.size() && IsPunct(src.tokens[k + 1], "(") &&
          src.CallsTransitively(t.text, kPolls)) {
        return true;
      }
    }
    return false;
  };

  for (size_t si = 0; si < src.scopes.size(); ++si) {
    const Scope& s = src.scopes[si];
    if (s.kind != ScopeKind::kLoop) continue;
    // Per-row work: the body appends to some container.
    bool emits = false;
    for (size_t k = s.first_token; k + 1 < s.last_token && !emits; ++k) {
      const Token& t = src.tokens[k];
      if (t.kind == TokKind::kIdent && kEmits.count(t.text) &&
          IsPunct(src.tokens[k + 1], "(") && k > 0 &&
          (IsPunct(src.tokens[k - 1], ".") ||
           (IsPunct(src.tokens[k - 1], ">") && k > 1 &&
            IsPunct(src.tokens[k - 2], "-")))) {
        emits = true;
      }
    }
    if (!emits) continue;
    // Governed if a poll fact is reachable from the loop body or anywhere in
    // the enclosing function (the poll typically sits at the enclosing
    // chunk-claim boundary rather than inside the innermost loop).
    if (span_reaches_poll(s.first_token, s.last_token)) continue;
    const int fscope = src.EnclosingFunctionScope(s.parent);
    if (fscope >= 0) {
      const Scope& f = src.scopes[static_cast<size_t>(fscope)];
      if (span_reaches_poll(f.first_token, f.last_token)) continue;
    }
    ctx.Emit(kRule, s.open_line,
             "loop emits per-row output but no GuardCheck/TryReserve poll "
             "fact is reachable from its body or enclosing function; add a "
             "poll point (see docs/INVARIANTS.md, cancellation contract)");
  }
}

// --- raw-mutex --------------------------------------------------------------
//
// Raw std:: synchronization primitives are invisible to clang's
// -Wthread-safety analysis; only the CAPABILITY-annotated wrappers in
// common/thread_annotations.h (Mutex, MutexLock, CondVar) participate in
// GUARDED_BY/REQUIRES checking. A raw std::mutex compiles fine and silently
// excludes its critical sections from the analysis the lint CI leg exists
// to run.
void RuleRawMutex(Ctx& ctx) {
  static const char* kRule = "raw-mutex";
  if (ctx.PathEndsWith("common/thread_annotations.h")) return;
  static const std::unordered_set<std::string> kBanned = {
      "mutex",          "recursive_mutex",
      "timed_mutex",    "recursive_timed_mutex",
      "shared_mutex",   "shared_timed_mutex",
      "lock_guard",     "unique_lock",
      "scoped_lock",    "shared_lock",
      "condition_variable", "condition_variable_any"};
  static const std::unordered_set<std::string> kHeaders = {
      "mutex", "shared_mutex", "condition_variable"};
  for (const Include& inc : ctx.src.includes) {
    if (kHeaders.count(inc.header)) {
      ctx.Emit(kRule, inc.line,
               "#include <" + inc.header +
                   "> outside common/thread_annotations.h; use the annotated "
                   "Mutex/MutexLock/CondVar wrappers");
    }
  }
  for (const Token& t : ctx.src.tokens) {
    if (t.kind == TokKind::kIdent && kBanned.count(t.text)) {
      ctx.Emit(kRule, t.line,
               "raw 'std::" + t.text +
                   "' escapes thread-safety analysis; use the annotated "
                   "wrappers in common/thread_annotations.h");
    }
  }
}

// --- mutable-shared-static --------------------------------------------------
//
// Shared mutable state that isn't atomic, Mutex-guarded, or const is exactly
// how the PR 8 shared-Database races happened, and it is invisible to the
// annotation layer unless someone remembers to write GUARDED_BY. Under
// src/engine/ a non-const function-local static or namespace-scope variable
// must be atomic, Mutex-protected, const/constexpr, or an instance of a
// same-file class whose every data member is already synchronized.
void RuleMutableSharedStatic(Ctx& ctx) {
  static const char* kRule = "mutable-shared-static";
  if (!ctx.PathContains("src/engine/")) return;
  static const std::unordered_set<std::string> kSafeMarkers = {
      "const", "constexpr", "atomic", "Mutex", "MutexLock", "CondVar",
      "thread_local"};
  const Analysis& src = ctx.src;
  const std::vector<Token>& toks = src.tokens;

  // (a) Function-local statics.
  for (size_t k = 0; k < toks.size(); ++k) {
    if (!IsIdent(toks[k], "static")) continue;
    const int sk = src.token_scope[k];
    if (src.EnclosingFunctionScope(sk) < 0) continue;  // not in a function
    // Collect the declaration statement: this scope's own tokens up to `;`.
    bool safe = false;
    std::string first_type_ident;
    const Scope& scope = src.scopes[static_cast<size_t>(sk)];
    for (size_t j = k + 1; j < scope.last_token; ++j) {
      if (src.token_scope[j] != sk) continue;  // skip init-brace innards
      const Token& t = toks[j];
      if (IsPunct(t, ";")) break;
      if (t.kind == TokKind::kIdent) {
        if (kSafeMarkers.count(t.text)) safe = true;
        if (first_type_ident.empty() && t.text != "std" &&
            t.text != "struct" && t.text != "class") {
          first_type_ident = t.text;
        }
      }
    }
    if (!safe && src.sync_safe_classes.count(first_type_ident)) safe = true;
    if (!safe) {
      ctx.Emit(kRule, toks[k].line,
               "non-const function-local static without atomic/Mutex "
               "protection; shared mutable state must be synchronized (or "
               "const) — see docs/INVARIANTS.md");
    }
  }

  // (b) Namespace-scope variables.
  for (size_t si = 0; si < src.scopes.size(); ++si) {
    const Scope& s = src.scopes[si];
    if (s.kind != ScopeKind::kFile && s.kind != ScopeKind::kNamespace) {
      continue;
    }
    // Statements over the scope's own tokens; a gap (nested scope) or brace
    // token also terminates a statement, so function bodies and init-lists
    // never glue declarations together.
    size_t stmt_line = 0;
    size_t prev_index = s.first_token;
    bool safe = false, has_paren = false, skip = false, any_ident = false;
    std::string first_ident, first_type_ident;
    auto flush = [&]() {
      if (any_ident && !has_paren && !skip && !safe &&
          !src.sync_safe_classes.count(first_type_ident)) {
        ctx.Emit(kRule, stmt_line,
                 "mutable namespace-scope state '" + first_type_ident +
                     " ...' without atomic/Mutex protection; wrap it in "
                     "std::atomic / Mutex (GUARDED_BY) or make it "
                     "const/constexpr");
      }
      stmt_line = 0;
      safe = has_paren = skip = any_ident = false;
      first_ident.clear();
      first_type_ident.clear();
    };
    for (size_t k = s.first_token; k < s.last_token; ++k) {
      if (src.token_scope[k] != static_cast<int>(si)) continue;
      if (k > prev_index + 1 && prev_index != s.first_token) flush();
      prev_index = k;
      const Token& t = toks[k];
      if (t.kind == TokKind::kPunct &&
          (t.text == ";" || t.text == "{" || t.text == "}")) {
        flush();
        continue;
      }
      if (stmt_line == 0) stmt_line = t.line;
      if (t.kind == TokKind::kIdent) {
        if (first_ident.empty()) {
          first_ident = t.text;
          static const std::unordered_set<std::string> kSkipStarters = {
              "using",  "typedef", "extern",   "template", "friend",
              "static_assert",     "namespace", "struct",  "class",
              "union",  "enum",    "public",   "private",  "protected"};
          if (kSkipStarters.count(t.text)) skip = true;
        }
        if (kSafeMarkers.count(t.text)) safe = true;
        if (first_type_ident.empty() && t.text != "std" &&
            t.text != "static" && t.text != "inline") {
          first_type_ident = t.text;
        }
        any_ident = true;
      }
      if (IsPunct(t, "(")) has_paren = true;
    }
    flush();
  }
}

// ---------------------------------------------------------------------------
// Registry, meta checks, entry points
// ---------------------------------------------------------------------------

using RuleFn = void (*)(Ctx&);

struct RuleEntry {
  const char* name;
  const char* description;
  RuleFn fn;
};

const std::vector<RuleEntry>& Registry() {
  static const std::vector<RuleEntry> kRules = {
      {"rng-outside-random",
       "RNG draws must route through the row-addressed CounterRandom "
       "substrate in common/random.*",
       RuleRngOutsideRandom},
      {"simd-outside-kernel-tu",
       "SIMD intrinsics are confined to engine/kernels/kernels_avx2.cc, the "
       "only TU built with -mavx2",
       RuleSimdOutsideKernelTu},
      {"string-keyed-map",
       "No std::map/std::unordered_map keyed by std::string under "
       "src/engine/; hot paths use the flat hashed tables",
       RuleStringKeyedMap},
      {"raw-double-accumulate",
       "Float accumulation in the aggregate kernels goes through NeumaierAdd, "
       "never a raw '+='",
       RuleRawDoubleAccumulate},
      {"naked-size-narrowing",
       "Row counts narrow to uint32_t only behind an explicit 2^32 Status "
       "guard",
       RuleNakedSizeNarrowing},
      {"naked-reserve",
       "reserve/resize in the governed hot TUs must be budget-charged through "
       "ExecGuard::TryReserve",
       RuleNakedReserve},
      {"unordered-iteration-in-result-path",
       "No range-for over unordered containers in result-producing functions; "
       "hash iteration order is nondeterministic",
       RuleUnorderedIterationInResultPath},
      {"ungoverned-loop",
       "Loops emitting per-row output in governed TUs must have a reachable "
       "GuardCheck/TryReserve poll fact",
       RuleUngovernedLoop},
      {"raw-mutex",
       "Raw std:: synchronization primitives escape thread-safety analysis; "
       "use the annotated wrappers in common/thread_annotations.h",
       RuleRawMutex},
      {"mutable-shared-static",
       "Non-const statics and globals under src/engine/ must be atomic, "
       "Mutex-guarded, or const",
       RuleMutableSharedStatic},
  };
  return kRules;
}

std::string NormalizePath(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

void EnsureStats(Report* report) {
  if (!report->rule_stats.empty()) return;
  for (const RuleEntry& r : Registry()) {
    report->rule_stats.push_back({r.name, 0, 0, 0});
  }
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const RuleEntry& r : Registry()) names.push_back(r.name);
    return names;
  }();
  return kNames;
}

std::string RuleDescription(const std::string& rule) {
  for (const RuleEntry& r : Registry()) {
    if (rule == r.name) return r.description;
  }
  if (rule == "unknown-rule") {
    return "An allow() comment names a rule that does not exist in the "
           "registry";
  }
  if (rule == "stale-suppression") {
    return "An allow() comment matches no diagnostic on its line and should "
           "be deleted";
  }
  if (rule == "io") return "The path could not be read";
  return "";
}

void LintSource(const std::string& path, const std::string& content,
                Report* report) {
  const auto t_begin = std::chrono::steady_clock::now();
  const std::string norm = NormalizePath(path);
  Analysis src = Analyze(content);
  EnsureStats(report);
  Ctx ctx{norm, src, report};
  const auto& rules = Registry();
  for (size_t i = 0; i < rules.size(); ++i) {
    ctx.stat = &report->rule_stats[i];
    const auto t0 = std::chrono::steady_clock::now();
    rules[i].fn(ctx);
    const auto t1 = std::chrono::steady_clock::now();
    ctx.stat->nanos += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
  }
  ctx.stat = nullptr;

  // Suppression-table hygiene: an allow() must name a real rule and must
  // have silenced at least one diagnostic. Neither failure is suppressible.
  static const std::unordered_set<std::string> kValid = [] {
    std::unordered_set<std::string> v;
    for (const std::string& n : RuleNames()) v.insert(n);
    return v;
  }();
  for (const Allow& a : src.allows) {
    if (!kValid.count(a.rule)) {
      report->violations.push_back(
          {norm, a.line, "unknown-rule",
           "allow() names unknown rule '" + a.rule +
               "'; run vdb_lint --list-rules for the registry"});
    } else if (a.hits == 0) {
      report->violations.push_back(
          {norm, a.line, "stale-suppression",
           "allow(" + a.rule +
               ") matches no diagnostic on this line; delete the stale "
               "suppression"});
    }
  }

  ++report->files_scanned;
  const auto t_end = std::chrono::steady_clock::now();
  report->total_nanos += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t_end - t_begin)
          .count());
}

Report LintPaths(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  Report report;
  EnsureStats(&report);

  auto wants = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
  };
  auto skip_dir = [](const fs::path& p) {
    const std::string name = p.filename().string();
    return name.rfind("build", 0) == 0 ||
           (!name.empty() && name[0] == '.' && name != ".");
  };

  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      fs::recursive_directory_iterator it(root, ec), end;
      for (; it != end; it.increment(ec)) {
        if (ec) break;
        if (it->is_directory(ec) && skip_dir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file(ec) && wants(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::exists(root, ec)) {
      files.push_back(fs::path(root).generic_string());
    } else {
      report.violations.push_back(
          {root, 0, "io", "no such file or directory"});
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      report.violations.push_back({file, 0, "io", "unable to read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    LintSource(file, buf.str(), &report);
  }

  std::sort(report.violations.begin(), report.violations.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return report;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

std::string FormatStats(const Report& report) {
  std::ostringstream os;
  os << "| rule | time (ms) | violations | suppressions |\n"
     << "|---|---:|---:|---:|\n";
  auto ms = [](uint64_t nanos) {
    std::ostringstream v;
    v.setf(std::ios::fixed);
    v.precision(3);
    v << static_cast<double>(nanos) / 1e6;
    return v.str();
  };
  uint64_t rule_nanos = 0;
  size_t violations = 0, suppressions = 0;
  for (const RuleStat& s : report.rule_stats) {
    os << "| " << s.rule << " | " << ms(s.nanos) << " | " << s.violations
       << " | " << s.suppressions << " |\n";
    rule_nanos += s.nanos;
    violations += s.violations;
    suppressions += s.suppressions;
  }
  os << "| **total (rules)** | " << ms(rule_nanos) << " | " << violations
     << " | " << suppressions << " |\n";
  os << "\n"
     << report.files_scanned << " file(s) scanned in " << ms(report.total_nanos)
     << " ms (tokenize + scope tree + rules), " << report.violations.size()
     << " violation(s), " << report.suppressions_used
     << " suppression(s) honored\n";
  return os.str();
}

}  // namespace vdb::lint
