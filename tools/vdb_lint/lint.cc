#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace vdb::lint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
//
// Just enough C++ lexing for contract rules: identifiers, punctuation, and
// #include targets, with comments / string literals / char literals / raw
// strings skipped so "rand" inside a diagnostic message never fires a rule.
// Comments are not discarded entirely — `// vdb-lint: allow(...)` trailers
// are parsed into a per-line suppression table.
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kPunct, kNumber };

struct Token {
  TokKind kind;
  std::string text;
  size_t line;
};

struct Include {
  std::string header;  // text between <> or "" in an #include
  size_t line;
};

struct Source {
  std::vector<Token> tokens;
  std::vector<Include> includes;
  // line -> rule names allowed on that line via `// vdb-lint: allow(...)`.
  std::unordered_map<size_t, std::set<std::string>> allows;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses the body of a comment for `vdb-lint: allow(rule-a, rule-b)` and
// records the named rules against `line`.
void ParseAllowComment(const std::string& comment, size_t line, Source* out) {
  const std::string kTag = "vdb-lint:";
  size_t at = comment.find(kTag);
  if (at == std::string::npos) return;
  at += kTag.size();
  while (at < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[at]))) {
    ++at;
  }
  if (comment.compare(at, 5, "allow") != 0) return;
  const size_t open = comment.find('(', at);
  if (open == std::string::npos) return;
  const size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string inside = comment.substr(open + 1, close - open - 1);
  std::string name;
  std::stringstream ss(inside);
  while (std::getline(ss, name, ',')) {
    const size_t b = name.find_first_not_of(" \t");
    const size_t e = name.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    out->allows[line].insert(name.substr(b, e - b + 1));
  }
}

Source Tokenize(const std::string& src) {
  Source out;
  size_t i = 0;
  size_t line = 1;
  const size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k) {
      if (src[i] == '\n') {
        ++line;
        at_line_start = true;
      }
      ++i;
    }
  };

  while (i < n) {
    const char c = src[i];

    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Line comment — capture it for allow() parsing, then skip to newline.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      ParseAllowComment(src.substr(start, i - start), line, &out);
      at_line_start = false;
      continue;
    }

    // Block comment. An allow() applies to the line the comment starts on.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const size_t start = i;
      const size_t start_line = line;
      advance(2);
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        advance(1);
      }
      ParseAllowComment(src.substr(start, i - start), start_line, &out);
      advance(2);
      continue;
    }

    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n') delim += src[j++];
      if (j < n && src[j] == '(') {
        const std::string closer = ")" + delim + "\"";
        const size_t end = src.find(closer, j + 1);
        advance((end == std::string::npos ? n : end + closer.size()) - i);
        continue;
      }
      // Not actually a raw string ("R" followed by something odd): fall
      // through and lex R as an identifier.
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      advance(1);
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) advance(1);
        advance(1);
      }
      advance(1);
      continue;
    }

    // Preprocessor line; record #include targets, skip the rest (with
    // continuation handling so multi-line macros don't leak tokens).
    if (c == '#' && at_line_start) {
      size_t j = i + 1;
      while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
      if (src.compare(j, 7, "include") == 0) {
        j += 7;
        while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
        if (j < n && (src[j] == '<' || src[j] == '"')) {
          const char close = src[j] == '<' ? '>' : '"';
          const size_t end = src.find(close, j + 1);
          if (end != std::string::npos) {
            out.includes.push_back({src.substr(j + 1, end - j - 1), line});
          }
        }
      }
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') advance(1);
        advance(1);
      }
      continue;
    }
    at_line_start = false;

    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      out.tokens.push_back({TokKind::kIdent, src.substr(start, i - start), line});
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.')) ++i;
      out.tokens.push_back({TokKind::kNumber, "", line});
      continue;
    }

    // Punctuation. Only `+=` needs to be fused for the rules; everything
    // else (including < > : ( ) . , ;) is emitted one char at a time.
    if (c == '+' && i + 1 < n && src[i + 1] == '=') {
      out.tokens.push_back({TokKind::kPunct, "+=", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule plumbing
// ---------------------------------------------------------------------------

struct Ctx {
  const std::string& path;  // slash-normalized
  const Source& src;
  Report* report;

  bool PathEndsWith(const std::string& suffix) const {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
               0;
  }
  bool PathContains(const std::string& piece) const {
    return path.find(piece) != std::string::npos;
  }

  void Emit(const std::string& rule, size_t line, const std::string& message) {
    auto it = src.allows.find(line);
    if (it != src.allows.end() && it->second.count(rule)) {
      ++report->suppressions_used;
      return;
    }
    report->violations.push_back({path, line, rule, message});
  }
};

// --- rng-outside-random -----------------------------------------------------
//
// Draws must route through the row-addressed substrate in common/random.*;
// a stray rand() or thread-local mt19937 reintroduces draw-order dependence
// and breaks run-to-run reproducibility of the parallel executor.
void RuleRngOutsideRandom(Ctx& ctx) {
  static const char* kRule = "rng-outside-random";
  if (ctx.PathEndsWith("common/random.h") ||
      ctx.PathEndsWith("common/random.cc")) {
    return;
  }
  static const std::unordered_set<std::string> kBanned = {
      "rand",          "srand",        "rand_r",
      "drand48",       "lrand48",      "srand48",
      "mt19937",       "mt19937_64",   "random_device",
      "minstd_rand",   "minstd_rand0", "default_random_engine",
      "ranlux24",      "ranlux48",     "knuth_b",
  };
  for (const Token& t : ctx.src.tokens) {
    if (t.kind == TokKind::kIdent && kBanned.count(t.text)) {
      ctx.Emit(kRule, t.line,
               "'" + t.text +
                   "' bypasses the row-addressed RNG; use vdb::Rng / RandAt "
                   "from common/random.h");
    }
  }
  for (const Include& inc : ctx.src.includes) {
    if (inc.header == "random" || inc.header == "cstdlib" ||
        inc.header == "stdlib.h") {
      // <cstdlib> is fine by itself (exit, getenv, strtol live there); only
      // <random> implies an engine is about to be constructed.
      if (inc.header == "random") {
        ctx.Emit(kRule, inc.line,
                 "#include <random> outside common/random.*; engines live "
                 "behind vdb::Rng");
      }
    }
  }
}

// --- simd-outside-kernel-tu -------------------------------------------------
//
// kernels_avx2.cc is the only TU compiled with -mavx2; an intrinsic anywhere
// else either SIGILLs on baseline CPUs or forces the flag onto the whole
// build.
void RuleSimdOutsideKernelTu(Ctx& ctx) {
  static const char* kRule = "simd-outside-kernel-tu";
  if (ctx.PathEndsWith("engine/kernels/kernels_avx2.cc")) return;
  static const std::unordered_set<std::string> kHeaders = {
      "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
      "avxintrin.h", "avx2intrin.h", "smmintrin.h", "tmmintrin.h",
      "nmmintrin.h", "pmmintrin.h",
  };
  for (const Include& inc : ctx.src.includes) {
    if (kHeaders.count(inc.header)) {
      ctx.Emit(kRule, inc.line,
               "#include <" + inc.header +
                   "> outside engine/kernels/kernels_avx2.cc (the only TU "
                   "built with -mavx2)");
    }
  }
  auto is_intrinsic = [](const std::string& s) {
    auto starts = [&s](const char* p) { return s.rfind(p, 0) == 0; };
    return starts("_mm_") || starts("_mm256_") || starts("_mm512_") ||
           starts("__m128") || starts("__m256") || starts("__m512");
  };
  for (const Token& t : ctx.src.tokens) {
    if (t.kind == TokKind::kIdent && is_intrinsic(t.text)) {
      ctx.Emit(kRule, t.line,
               "intrinsic '" + t.text +
                   "' outside engine/kernels/kernels_avx2.cc");
    }
  }
}

// --- string-keyed-map -------------------------------------------------------
//
// Under src/engine/ a std::map / std::unordered_map keyed by std::string is
// the per-row hash-map shape PRs 4/7 replaced with flat hashed tables; new
// ones are either a hot-path regression or plan-time metadata that should
// say so with an allow() comment.
void RuleStringKeyedMap(Ctx& ctx) {
  static const char* kRule = "string-keyed-map";
  if (!ctx.PathContains("src/engine/")) return;
  const std::vector<Token>& toks = ctx.src.tokens;
  for (size_t k = 0; k + 1 < toks.size(); ++k) {
    const Token& t = toks[k];
    if (t.kind != TokKind::kIdent ||
        (t.text != "map" && t.text != "unordered_map")) {
      continue;
    }
    if (toks[k + 1].kind != TokKind::kPunct || toks[k + 1].text != "<") {
      continue;
    }
    // Scan the first template argument (depth-1 tokens up to the first ','
    // or the closing '>').
    int depth = 1;
    bool string_key = false;
    for (size_t j = k + 2; j < toks.size() && depth > 0; ++j) {
      const Token& u = toks[j];
      if (u.kind == TokKind::kPunct) {
        if (u.text == "<") ++depth;
        else if (u.text == ">") --depth;
        else if (u.text == "," && depth == 1) break;
        else if (u.text == ";" || u.text == "{") break;  // not a template
      } else if (u.kind == TokKind::kIdent && depth == 1 &&
                 u.text == "string") {
        string_key = true;
      }
    }
    if (string_key) {
      ctx.Emit(kRule, t.line,
               "std::" + t.text +
                   " keyed by std::string in src/engine/; hot paths use the "
                   "flat hashed tables (agg_table.h / join_table.h)");
    }
  }
}

// --- raw-double-accumulate --------------------------------------------------
//
// In the aggregate kernels, `+=` straight onto a sum/comp accumulator member
// skips Neumaier compensation, so 1-thread and N-thread results stop being
// bit-identical. All float accumulation goes through NeumaierAdd.
void RuleRawDoubleAccumulate(Ctx& ctx) {
  static const char* kRule = "raw-double-accumulate";
  if (!ctx.PathEndsWith("engine/aggregates.cc") &&
      !ctx.PathEndsWith("engine/agg_table.cc")) {
    return;
  }
  static const std::unordered_set<std::string> kAccumulators = {
      "sum", "sum_", "sums", "sums_", "comp", "comp_", "comps", "comps_",
  };
  const std::vector<Token>& toks = ctx.src.tokens;
  for (size_t k = 0; k < toks.size(); ++k) {
    if (toks[k].kind != TokKind::kPunct || toks[k].text != "+=") continue;
    // Walk left over a possible [index] to the target identifier.
    size_t j = k;
    if (j > 0 && toks[j - 1].kind == TokKind::kPunct &&
        toks[j - 1].text == "]") {
      int depth = 1;
      --j;
      while (j > 0 && depth > 0) {
        --j;
        if (toks[j].kind == TokKind::kPunct) {
          if (toks[j].text == "]") ++depth;
          if (toks[j].text == "[") --depth;
        }
      }
    }
    if (j == 0) continue;
    const Token& target = toks[j - 1];
    if (target.kind == TokKind::kIdent && kAccumulators.count(target.text)) {
      ctx.Emit(kRule, toks[k].line,
               "raw '+=' on accumulator '" + target.text +
                   "'; route through NeumaierAdd to keep serial/parallel "
                   "results bit-identical");
    }
  }
}

// --- naked-size-narrowing ---------------------------------------------------
//
// Row ids narrow to uint32_t only behind the explicit 2^32 Status guards; a
// static_cast<uint32_t>(x.size()) with no allow() comment is a silent
// truncation waiting for a big table.
void RuleNakedSizeNarrowing(Ctx& ctx) {
  static const char* kRule = "naked-size-narrowing";
  if (!ctx.PathContains("src/engine/") && !ctx.PathContains("src/common/")) {
    return;
  }
  const std::vector<Token>& toks = ctx.src.tokens;
  for (size_t k = 0; k + 4 < toks.size(); ++k) {
    // static_cast < uint32_t > ( ... .size() ... )
    if (toks[k].kind != TokKind::kIdent || toks[k].text != "static_cast")
      continue;
    if (toks[k + 1].text != "<" || toks[k + 2].text != "uint32_t" ||
        toks[k + 3].text != ">" || toks[k + 4].text != "(") {
      continue;
    }
    int depth = 1;
    for (size_t j = k + 5; j < toks.size() && depth > 0; ++j) {
      const Token& u = toks[j];
      if (u.kind == TokKind::kPunct) {
        if (u.text == "(") ++depth;
        if (u.text == ")") --depth;
      } else if (u.kind == TokKind::kIdent && u.text == "size" && j >= 1 &&
                 (toks[j - 1].text == "." ||
                  (j >= 2 && toks[j - 1].text == ">" &&
                   toks[j - 2].text == "-")) &&
                 j + 1 < toks.size() && toks[j + 1].text == "(") {
        ctx.Emit(kRule, toks[k].line,
                 "static_cast<uint32_t>(...size()) without a 2^32 guard "
                 "acknowledgment; check the row count first (see "
                 "docs/INVARIANTS.md)");
        break;
      }
    }
  }
}

// --- naked-reserve ----------------------------------------------------------
//
// In the governed hot TUs (join_table, agg_table, operators — the engine
// structures whose footprint is row-proportional) every reserve/resize must
// be budget-charged through ExecGuard::TryReserve (via Charge(),
// GuardTryReserve, or ScopedReservation) or carry an allow() naming the
// exemption: fixed-size chunk, column-count bounded, or charged by the
// caller. An unannotated reserve is how an over-budget query turns into an
// std::bad_alloc abort instead of a clean kResourceExhausted.
void RuleNakedReserve(Ctx& ctx) {
  static const char* kRule = "naked-reserve";
  if (!ctx.PathEndsWith("engine/join_table.cc") &&
      !ctx.PathEndsWith("engine/join_table.h") &&
      !ctx.PathEndsWith("engine/agg_table.cc") &&
      !ctx.PathEndsWith("engine/agg_table.h") &&
      !ctx.PathEndsWith("engine/operators.cc")) {
    return;
  }
  const std::vector<Token>& toks = ctx.src.tokens;
  for (size_t k = 1; k + 1 < toks.size(); ++k) {
    const Token& t = toks[k];
    if (t.kind != TokKind::kIdent ||
        (t.text != "reserve" && t.text != "resize")) {
      continue;
    }
    if (toks[k + 1].kind != TokKind::kPunct || toks[k + 1].text != "(") {
      continue;
    }
    // Member call only: `x.reserve(` or `x->reserve(` (the tokenizer emits
    // '-' and '>' as separate punctuation).
    const Token& prev = toks[k - 1];
    const bool member =
        prev.kind == TokKind::kPunct &&
        (prev.text == "." ||
         (prev.text == ">" && k >= 2 && toks[k - 2].kind == TokKind::kPunct &&
          toks[k - 2].text == "-"));
    if (!member) continue;
    ctx.Emit(kRule, t.line,
             "'" + t.text +
                 "' without a budget charge in a governed TU; route through "
                 "ExecGuard::TryReserve (Charge / GuardTryReserve / "
                 "ScopedReservation) or add an allow() with the exemption "
                 "rationale");
  }
}

// ---------------------------------------------------------------------------

std::string NormalizePath(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kNames = {
      "rng-outside-random",    "simd-outside-kernel-tu",
      "string-keyed-map",      "raw-double-accumulate",
      "naked-size-narrowing",  "naked-reserve",
  };
  return kNames;
}

void LintSource(const std::string& path, const std::string& content,
                Report* report) {
  const std::string norm = NormalizePath(path);
  const Source src = Tokenize(content);
  Ctx ctx{norm, src, report};
  RuleRngOutsideRandom(ctx);
  RuleSimdOutsideKernelTu(ctx);
  RuleStringKeyedMap(ctx);
  RuleRawDoubleAccumulate(ctx);
  RuleNakedSizeNarrowing(ctx);
  RuleNakedReserve(ctx);
  ++report->files_scanned;
}

Report LintPaths(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  Report report;

  auto wants = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
  };
  auto skip_dir = [](const fs::path& p) {
    const std::string name = p.filename().string();
    return name.rfind("build", 0) == 0 ||
           (!name.empty() && name[0] == '.' && name != ".");
  };

  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      fs::recursive_directory_iterator it(root, ec), end;
      for (; it != end; it.increment(ec)) {
        if (ec) break;
        if (it->is_directory(ec) && skip_dir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file(ec) && wants(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::exists(root, ec)) {
      files.push_back(fs::path(root).generic_string());
    } else {
      report.violations.push_back(
          {root, 0, "io", "no such file or directory"});
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      report.violations.push_back({file, 0, "io", "unable to read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    LintSource(file, buf.str(), &report);
  }

  std::sort(report.violations.begin(), report.violations.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return report;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

}  // namespace vdb::lint
