// SARIF 2.1.0 rendering for vdb-lint reports.
//
// One run, one reportingDescriptor per registry rule (plus the meta
// diagnostics), one result per surviving violation. The output is
// deterministic — violations keep the sorted order LintPaths produced and
// paths are emitted verbatim as artifact URIs — so CI runs from the repo
// root produce repo-relative URIs that GitHub code scanning can annotate
// onto PR diffs, and the golden-file self-test can compare bytes.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace vdb::lint {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToSarif(const Report& report) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"vdb-lint\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/vdb-lint\",\n"
     << "          \"rules\": [\n";
  std::vector<std::string> rule_ids = RuleNames();
  rule_ids.push_back("unknown-rule");
  rule_ids.push_back("stale-suppression");
  rule_ids.push_back("io");
  for (size_t i = 0; i < rule_ids.size(); ++i) {
    os << "            {\n"
       << "              \"id\": \"" << JsonEscape(rule_ids[i]) << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << JsonEscape(RuleDescription(rule_ids[i])) << "\" },\n"
       << "              \"defaultConfiguration\": { \"level\": \"error\" }\n"
       << "            }" << (i + 1 < rule_ids.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (size_t i = 0; i < report.violations.size(); ++i) {
    const Diagnostic& d = report.violations[i];
    const size_t line = d.line == 0 ? 1 : d.line;  // SARIF lines are 1-based
    os << "        {\n"
       << "          \"ruleId\": \"" << JsonEscape(d.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": { \"text\": \"" << JsonEscape(d.message)
       << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << JsonEscape(d.file) << "\" },\n"
       << "                \"region\": { \"startLine\": " << line << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }" << (i + 1 < report.violations.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace vdb::lint
