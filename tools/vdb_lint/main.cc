// vdb-lint driver: `vdb_lint [options] <paths...>` lints the given
// files/directories and exits non-zero if any contract violation — or any
// stale/unknown allow() suppression — survives. See lint.h for the rule set
// and docs/INVARIANTS.md for the rationale.
//
//   --sarif <file>   also write the report as SARIF 2.1.0 (for GitHub code
//                    scanning; CI uploads it so violations annotate PR diffs)
//   --stats          print a per-rule timing/outcome markdown table (CI pipes
//                    it into the job summary)
//   --list-rules     print the rule registry and exit

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string sarif_path;
  bool stats = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& r : vdb::lint::RuleNames()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    }
    if (std::strcmp(argv[i], "--sarif") == 0 && i + 1 < argc) {
      sarif_path = argv[++i];
      continue;
    }
    if (std::strncmp(argv[i], "--sarif=", 8) == 0) {
      sarif_path = argv[i] + 8;
      continue;
    }
    if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
      continue;
    }
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: vdb_lint [--list-rules] [--sarif <file>] [--stats] "
          "<file-or-dir>...\n"
          "Checks the project contracts (see docs/INVARIANTS.md).\n"
          "Suppress a finding in place with: // vdb-lint: allow(<rule>)\n"
          "Unknown rule names in allow() and suppressions that match no\n"
          "diagnostic are themselves errors.\n");
      return 0;
    }
    roots.emplace_back(argv[i]);
  }
  if (roots.empty()) roots.emplace_back(".");

  const vdb::lint::Report report = vdb::lint::LintPaths(roots);
  for (const auto& d : report.violations) {
    std::fprintf(stderr, "%s\n", vdb::lint::FormatDiagnostic(d).c_str());
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "vdb-lint: unable to write SARIF to %s\n",
                   sarif_path.c_str());
      return 2;
    }
    out << vdb::lint::ToSarif(report);
  }
  if (stats) {
    std::fputs(vdb::lint::FormatStats(report).c_str(), stdout);
  } else {
    std::printf(
        "vdb-lint: scanned %zu files, %zu violation(s), %zu suppression(s) "
        "honored\n",
        report.files_scanned, report.violations.size(),
        report.suppressions_used);
  }
  return report.ok() ? 0 : 1;
}
