// vdb-lint driver: `vdb_lint <paths...>` lints the given files/directories
// and exits non-zero if any contract violation survives its allow() check.
// See lint.h for the rule set and docs/INVARIANTS.md for the rationale.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& r : vdb::lint::RuleNames()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    }
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: vdb_lint [--list-rules] <file-or-dir>...\n"
          "Checks the project contracts (see docs/INVARIANTS.md).\n"
          "Suppress a finding in place with: // vdb-lint: allow(<rule>)\n");
      return 0;
    }
    roots.emplace_back(argv[i]);
  }
  if (roots.empty()) roots.emplace_back(".");

  const vdb::lint::Report report = vdb::lint::LintPaths(roots);
  for (const auto& d : report.violations) {
    std::fprintf(stderr, "%s\n", vdb::lint::FormatDiagnostic(d).c_str());
  }
  std::printf(
      "vdb-lint: scanned %zu files, %zu violation(s), %zu suppression(s) "
      "honored\n",
      report.files_scanned, report.violations.size(),
      report.suppressions_used);
  return report.ok() ? 0 : 1;
}
