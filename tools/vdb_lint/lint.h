// vdb-lint: the project-contract checker.
//
// A deliberately small static checker — a C++ tokenizer plus per-rule token
// matchers, no libclang — that turns this repo's written-down invariants
// into pass/fail CI diagnostics. The rules (see docs/INVARIANTS.md for the
// history behind each):
//
//   rng-outside-random      rand()/srand/std::mt19937/std::random_device &
//                           friends anywhere but common/random.* — every
//                           engine draw must go through the row-addressed
//                           CounterRandom substrate (PR 5), or parallel
//                           results silently depend on draw order again.
//   simd-outside-kernel-tu  <immintrin.h> / _mm*/__m256-family intrinsics
//                           outside engine/kernels/kernels_avx2.cc — the one
//                           TU built with -mavx2 (PR 6). An intrinsic in any
//                           other file executes illegal instructions on
//                           baseline CPUs, or silently pins the whole build
//                           to AVX2.
//   string-keyed-map        std::map/std::unordered_map keyed by std::string
//                           under src/engine/ — per-row string keys are the
//                           exact structure PRs 4/7 removed; new hot paths
//                           must use the flat hashed tables. Plan-time
//                           metadata maps carry explicit allow() comments.
//   raw-double-accumulate   a raw `+=` onto sum/comp accumulator members in
//                           engine/aggregates.cc / engine/agg_table.cc —
//                           float accumulation must go through NeumaierAdd
//                           or 1-thread vs N-thread results stop being
//                           bit-identical (PR 3).
//   naked-size-narrowing    static_cast<uint32_t>(....size()...) in
//                           src/engine/ / src/common/ — row counts narrow to
//                            uint32 only behind an explicit 2^32 Status
//                           guard; a naked cast truncates silently at scale.
//
// Any diagnostic can be acknowledged in place with a trailing comment:
//     ... code ...  // vdb-lint: allow(rule-name[, rule-name]) <rationale>
// Honored suppressions are counted and reported so drift stays visible.

#ifndef VDB_TOOLS_VDB_LINT_LINT_H_
#define VDB_TOOLS_VDB_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace vdb::lint {

struct Diagnostic {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct Report {
  std::vector<Diagnostic> violations;
  size_t files_scanned = 0;
  size_t suppressions_used = 0;  // diagnostics silenced by allow() comments

  bool ok() const { return violations.empty(); }
};

/// All rule names, for self-tests and --list-rules.
const std::vector<std::string>& RuleNames();

/// Lints one in-memory source. `path` (slash-normalized, matched by
/// suffix/substring) decides which rules apply. Appends to *report.
void LintSource(const std::string& path, const std::string& content,
                Report* report);

/// Expands roots (files or directories; directories are walked recursively
/// for .cc/.h/.cpp/.hpp, skipping build*/ and hidden dirs) and lints each
/// file. Diagnostics come back sorted by file then line.
Report LintPaths(const std::vector<std::string>& roots);

/// "file:line: [rule] message" — the compiler-style form editors jump on.
std::string FormatDiagnostic(const Diagnostic& d);

}  // namespace vdb::lint

#endif  // VDB_TOOLS_VDB_LINT_LINT_H_
