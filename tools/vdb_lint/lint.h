// vdb-lint: the project-contract checker.
//
// A deliberately small structural analyzer — a preprocessor-aware tokenizer
// feeding a brace-matched scope tree (see analyzer.h), no libclang — that
// turns this repo's written-down invariants into pass/fail CI diagnostics.
// The ten rules (see docs/INVARIANTS.md for the history behind each):
//
//   rng-outside-random      rand()/srand/std::mt19937/std::random_device &
//                           friends anywhere but common/random.* — every
//                           engine draw must go through the row-addressed
//                           CounterRandom substrate (PR 5), or parallel
//                           results silently depend on draw order again.
//   simd-outside-kernel-tu  <immintrin.h> / _mm*/__m256-family intrinsics
//                           outside engine/kernels/kernels_avx2.cc — the one
//                           TU built with -mavx2 (PR 6). An intrinsic in any
//                           other file executes illegal instructions on
//                           baseline CPUs, or silently pins the whole build
//                           to AVX2.
//   string-keyed-map        std::map/std::unordered_map keyed by std::string
//                           under src/engine/ — per-row string keys are the
//                           exact structure PRs 4/7 removed; new hot paths
//                           must use the flat hashed tables. Plan-time
//                           metadata maps carry explicit allow() comments.
//   raw-double-accumulate   a raw `+=` onto sum/comp accumulator members in
//                           engine/aggregates.cc / engine/agg_table.cc —
//                           float accumulation must go through NeumaierAdd
//                           or 1-thread vs N-thread results stop being
//                           bit-identical (PR 3).
//   naked-size-narrowing    static_cast<uint32_t>(....size()...) in
//                           src/engine/ / src/common/ — row counts narrow to
//                           uint32 only behind an explicit 2^32 Status
//                           guard; a naked cast truncates silently at scale.
//   naked-reserve           reserve/resize in the governed hot TUs
//                           (join_table / agg_table / operators) without a
//                           budget charge — an over-budget query must fail
//                           with kResourceExhausted, not std::bad_alloc
//                           (PR 9).
//   unordered-iteration-in-result-path
//                           range-for over an unordered_map/unordered_set in
//                           a result-producing function under src/engine/,
//                           src/estimator/, src/integrated/ or src/core/ —
//                           hash-table iteration order is the one
//                           bit-identity breaker no fuzz suite reliably
//                           catches; sort the keys or address by index.
//   ungoverned-loop         a loop in a governed TU whose body emits
//                           per-row output but has no GuardCheck / TryReserve
//                           poll fact reachable (directly, through a callee,
//                           or via an enclosing loop) — poll-point coverage
//                           for PR 9's cancellation contract.
//   raw-mutex               std::mutex / std::lock_guard /
//                           std::condition_variable & friends outside
//                           common/thread_annotations.h — raw primitives
//                           silently escape clang thread-safety analysis;
//                           use the CAPABILITY-annotated wrappers (PR 8).
//   mutable-shared-static   a non-const function-local static or
//                           namespace-scope global under src/engine/ without
//                           atomic/Mutex protection — shared mutable state
//                           invisible to the annotation layer is how the
//                           PR 8 Database races happened.
//
// Any diagnostic can be acknowledged in place with a trailing comment:
//     ... code ...  // vdb-lint: allow(rule-name[, rule-name]) <rationale>
// Honored suppressions are counted and reported so drift stays visible, and
// the suppression table itself is checked: an allow() naming an unknown rule
// is an `unknown-rule` error, and an allow() that matches no diagnostic on
// its line is a `stale-suppression` error. Neither can be suppressed.

#ifndef VDB_TOOLS_VDB_LINT_LINT_H_
#define VDB_TOOLS_VDB_LINT_LINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vdb::lint {

struct Diagnostic {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

/// Per-rule aggregate timing/outcome counters, for --stats.
struct RuleStat {
  std::string rule;
  uint64_t nanos = 0;
  size_t violations = 0;
  size_t suppressions = 0;
};

struct Report {
  std::vector<Diagnostic> violations;
  size_t files_scanned = 0;
  size_t suppressions_used = 0;  // diagnostics silenced by allow() comments
  std::vector<RuleStat> rule_stats;  // one entry per registry rule, in order
  uint64_t total_nanos = 0;          // tokenize + scope tree + rules

  bool ok() const { return violations.empty(); }
};

/// All rule names, for self-tests and --list-rules.
const std::vector<std::string>& RuleNames();

/// One-line description of a registry rule (also used for SARIF metadata).
/// Returns an empty string for unknown names.
std::string RuleDescription(const std::string& rule);

/// Lints one in-memory source. `path` (slash-normalized, matched by
/// suffix/substring) decides which rules apply. Appends to *report.
void LintSource(const std::string& path, const std::string& content,
                Report* report);

/// Expands roots (files or directories; directories are walked recursively
/// for .cc/.h/.cpp/.hpp, skipping build*/ and hidden dirs) and lints each
/// file. Diagnostics come back sorted by file then line.
Report LintPaths(const std::vector<std::string>& roots);

/// "file:line: [rule] message" — the compiler-style form editors jump on.
std::string FormatDiagnostic(const Diagnostic& d);

/// Renders the report as a SARIF 2.1.0 log (one run, one result per
/// violation, rule metadata included) for CI code-scanning upload. Output is
/// deterministic: violations keep their sorted order and paths are emitted
/// verbatim as artifact URIs.
std::string ToSarif(const Report& report);

/// Renders rule_stats as a GitHub-flavored markdown table (for --stats and
/// the CI job summary).
std::string FormatStats(const Report& report);

}  // namespace vdb::lint

#endif  // VDB_TOOLS_VDB_LINT_LINT_H_
