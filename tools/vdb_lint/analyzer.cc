#include "analyzer.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace vdb::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses the body of a comment for `vdb-lint: allow(rule-a, rule-b)` and
// records one Allow entry per named rule against `line`.
void ParseAllowComment(const std::string& comment, size_t line, Analysis* out) {
  const std::string kTag = "vdb-lint:";
  size_t at = comment.find(kTag);
  if (at == std::string::npos) return;
  at += kTag.size();
  while (at < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[at]))) {
    ++at;
  }
  if (comment.compare(at, 5, "allow") != 0) return;
  const size_t open = comment.find('(', at);
  if (open == std::string::npos) return;
  const size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string inside = comment.substr(open + 1, close - open - 1);
  std::string name;
  std::stringstream ss(inside);
  while (std::getline(ss, name, ',')) {
    const size_t b = name.find_first_not_of(" \t");
    const size_t e = name.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    out->allows.push_back({line, name.substr(b, e - b + 1), 0});
  }
}

// ---------------------------------------------------------------------------
// Tokenizer — identifiers, punctuation and #include targets, with comments /
// string literals / char literals / raw strings skipped so "rand" inside a
// diagnostic message never fires a rule, and with whole preprocessor lines
// (continuations included) dropped so a macro body spanning braces cannot
// skew the scope tree.
// ---------------------------------------------------------------------------

void Tokenize(const std::string& src, Analysis* out) {
  size_t i = 0;
  size_t line = 1;
  const size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k) {
      if (src[i] == '\n') {
        ++line;
        at_line_start = true;
      }
      ++i;
    }
  };

  while (i < n) {
    const char c = src[i];

    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Line comment — capture it for allow() parsing, then skip to newline.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      ParseAllowComment(src.substr(start, i - start), line, out);
      at_line_start = false;
      continue;
    }

    // Block comment. An allow() applies to the line the comment starts on.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const size_t start = i;
      const size_t start_line = line;
      advance(2);
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        advance(1);
      }
      ParseAllowComment(src.substr(start, i - start), start_line, out);
      advance(2);
      continue;
    }

    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n') delim += src[j++];
      if (j < n && src[j] == '(') {
        const std::string closer = ")" + delim + "\"";
        const size_t end = src.find(closer, j + 1);
        advance((end == std::string::npos ? n : end + closer.size()) - i);
        continue;
      }
      // Not actually a raw string ("R" followed by something odd): fall
      // through and lex R as an identifier.
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      advance(1);
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) advance(1);
        advance(1);
      }
      advance(1);
      continue;
    }

    // Preprocessor line; record #include targets, skip the rest (with
    // continuation handling so multi-line macro bodies don't leak tokens or
    // braces into the scope tree).
    if (c == '#' && at_line_start) {
      size_t j = i + 1;
      while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
      if (src.compare(j, 7, "include") == 0) {
        j += 7;
        while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
        if (j < n && (src[j] == '<' || src[j] == '"')) {
          const char close = src[j] == '<' ? '>' : '"';
          const size_t end = src.find(close, j + 1);
          if (end != std::string::npos) {
            out->includes.push_back({src.substr(j + 1, end - j - 1), line});
          }
        }
      }
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') advance(1);
        advance(1);
      }
      continue;
    }
    at_line_start = false;

    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      out->tokens.push_back(
          {TokKind::kIdent, src.substr(start, i - start), line});
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.')) ++i;
      out->tokens.push_back({TokKind::kNumber, "", line});
      continue;
    }

    // Punctuation. Only `+=` needs to be fused for the rules; everything
    // else (including < > : ( ) . , ;) is emitted one char at a time.
    if (c == '+' && i + 1 < n && src[i + 1] == '=') {
      out->tokens.push_back({TokKind::kPunct, "+=", line});
      i += 2;
      continue;
    }
    out->tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Scope tree construction
// ---------------------------------------------------------------------------

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

// Index of the `(` matching the `)` at `close`, or npos.
size_t MatchingOpenParen(const std::vector<Token>& toks, size_t close) {
  int depth = 0;
  for (size_t j = close + 1; j-- > 0;) {
    if (IsPunct(toks[j], ")")) ++depth;
    else if (IsPunct(toks[j], "(")) {
      if (--depth == 0) return j;
    }
  }
  return std::string::npos;
}

// Index of the `)` matching the `(` at `open`, or npos.
size_t MatchingCloseParen(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t j = open; j < toks.size(); ++j) {
    if (IsPunct(toks[j], "(")) ++depth;
    else if (IsPunct(toks[j], ")")) {
      if (--depth == 0) return j;
    }
  }
  return std::string::npos;
}

// A lone `:` (not half of `::`) — the range-for separator shape.
bool IsLoneColon(const std::vector<Token>& toks, size_t j) {
  if (!IsPunct(toks[j], ":")) return false;
  if (j > 0 && IsPunct(toks[j - 1], ":")) return false;
  if (j + 1 < toks.size() && IsPunct(toks[j + 1], ":")) return false;
  return true;
}

struct BraceClass {
  ScopeKind kind = ScopeKind::kBlock;
  std::string name;
  std::string class_qualifier;  // for `A::B(...) {` functions
  size_t paren_open = std::string::npos;  // header parens, when present
};

// Decides what kind of scope the `{` at token index k opens, by looking
// backwards at the statement it terminates.
BraceClass ClassifyBrace(const std::vector<Token>& toks, size_t k,
                         ScopeKind enclosing_kind) {
  BraceClass out;
  if (k == 0) return out;
  const Token& prev = toks[k - 1];

  // Keyword-introduced bodies.
  if (IsIdent(prev, "do")) { out.kind = ScopeKind::kLoop; return out; }
  if (IsIdent(prev, "else") || IsIdent(prev, "try")) return out;  // kBlock
  if (IsIdent(prev, "namespace") || IsIdent(prev, "extern")) {
    out.kind = ScopeKind::kNamespace;
    return out;
  }
  // `namespace a::b::c {` — an unbroken identifier/`::` chain introduced by
  // the `namespace` keyword (the chain walk is what makes nested-namespace
  // definitions classify correctly).
  {
    size_t j = k;
    std::string last_ident;
    for (size_t steps = 0; j > 0 && steps < 16; ++steps) {
      const Token& t = toks[j - 1];
      if (IsIdent(t, "namespace")) {
        out.kind = ScopeKind::kNamespace;
        out.name = last_ident;
        return out;
      }
      if (t.kind == TokKind::kIdent) {
        if (last_ident.empty()) last_ident = t.text;
        --j;
        continue;
      }
      if (IsPunct(t, ":")) { --j; continue; }
      break;
    }
  }

  // `[...] {` — a capture-only lambda body.
  if (IsPunct(prev, "]")) { out.kind = ScopeKind::kLambda; return out; }

  // `...) <specifiers> {` — scan back over return-type arrows / cv
  // qualifiers / override-style specifiers looking for the header `)`.
  size_t j = k;  // one past the candidate
  for (size_t steps = 0; j > 0 && steps < 24; ++steps) {
    const Token& t = toks[j - 1];
    if (IsPunct(t, ")")) break;
    const bool skippable =
        t.kind == TokKind::kIdent ||
        (t.kind == TokKind::kPunct &&
         (t.text == ">" || t.text == "<" || t.text == ":" || t.text == "*" ||
          t.text == "&" || t.text == "-" || t.text == ","));
    if (!skippable) { j = 0; break; }
    --j;
  }
  if (j > 0 && IsPunct(toks[j - 1], ")")) {
    const size_t close = j - 1;
    const size_t open = MatchingOpenParen(toks, close);
    if (open != std::string::npos && open > 0) {
      const Token& head = toks[open - 1];
      out.paren_open = open;
      if (IsIdent(head, "for") || IsIdent(head, "while")) {
        out.kind = ScopeKind::kLoop;
        return out;
      }
      if (IsIdent(head, "if") || IsIdent(head, "switch") ||
          IsIdent(head, "catch")) {
        return out;  // kBlock
      }
      if (IsPunct(head, "]")) { out.kind = ScopeKind::kLambda; return out; }
      if (head.kind == TokKind::kIdent &&
          (enclosing_kind == ScopeKind::kFile ||
           enclosing_kind == ScopeKind::kNamespace ||
           enclosing_kind == ScopeKind::kClass)) {
        out.kind = ScopeKind::kFunction;
        out.name = head.text;
        // `A::B(...)` — record the qualifier as the class name.
        if (open >= 4 && IsPunct(toks[open - 2], ":") &&
            IsPunct(toks[open - 3], ":") &&
            toks[open - 4].kind == TokKind::kIdent) {
          out.class_qualifier = toks[open - 4].text;
        }
        return out;
      }
      return out;  // kBlock: `)` headers inside function bodies
    }
    return out;  // unmatched paren — play it safe
  }

  // class / struct / union / enum definition: scan the statement backwards
  // for the introducing keyword (base clauses and template arguments may
  // intervene; a `;` / `{` / `}` / `)` ends the statement).
  for (size_t b = k, steps = 0; b > 0 && steps < 64; ++steps) {
    const Token& t = toks[b - 1];
    if (t.kind == TokKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ")")) {
      break;
    }
    if (t.kind == TokKind::kIdent &&
        (t.text == "class" || t.text == "struct" || t.text == "union" ||
         t.text == "enum")) {
      out.kind = t.text == "enum" ? ScopeKind::kEnum : ScopeKind::kClass;
      // `enum class Name` / `struct Name final : Base` — the name is the
      // first plain identifier after the keyword chain.
      for (size_t m = b; m < k; ++m) {
        if (toks[m].kind == TokKind::kIdent && toks[m].text != "class" &&
            toks[m].text != "final") {
          out.name = toks[m].text;
          break;
        }
        if (toks[m].kind == TokKind::kPunct && toks[m].text == ":") break;
      }
      return out;
    }
    --b;
  }

  return out;  // kBlock: init-lists, compound statements, everything else
}

// ---------------------------------------------------------------------------
// Post-tree passes
// ---------------------------------------------------------------------------

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kw = {
      "if",       "for",      "while",        "switch",  "return",
      "sizeof",   "alignof",  "static_cast",  "const_cast",
      "dynamic_cast", "reinterpret_cast", "new", "delete", "throw",
      "catch",    "do",       "else",         "case",    "default",
      "decltype", "noexcept", "static_assert", "alignas", "typeid",
      "co_return", "co_await", "co_yield",
  };
  return kw;
}

void CollectFunctionFacts(Analysis* a) {
  for (FunctionInfo& fn : a->functions) {
    const Scope& s = a->scopes[static_cast<size_t>(fn.scope)];
    for (size_t k = s.first_token; k < s.last_token; ++k) {
      const Token& t = a->tokens[k];
      if (t.kind != TokKind::kIdent) continue;
      const bool called = k + 1 < a->tokens.size() &&
                          IsPunct(a->tokens[k + 1], "(") &&
                          !Keywords().count(t.text);
      const bool member =
          k > 0 && (IsPunct(a->tokens[k - 1], ".") ||
                    (IsPunct(a->tokens[k - 1], ">") && k > 1 &&
                     IsPunct(a->tokens[k - 2], "-")));
      if (called) fn.calls.insert(t.text);
      if (member) fn.members_touched.insert(t.text);
    }
  }
}

void CollectUnorderedVars(Analysis* a) {
  static const std::unordered_set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const std::vector<Token>& toks = a->tokens;
  for (size_t k = 0; k + 1 < toks.size(); ++k) {
    if (toks[k].kind != TokKind::kIdent || !kUnordered.count(toks[k].text) ||
        !IsPunct(toks[k + 1], "<")) {
      continue;
    }
    // Match the template argument list (bailing on statement terminators so
    // a stray comparison `a < b` can't send us off the rails).
    int depth = 1;
    size_t j = k + 2;
    for (size_t steps = 0; j < toks.size() && depth > 0 && steps < 256;
         ++j, ++steps) {
      const Token& u = toks[j];
      if (u.kind != TokKind::kPunct) continue;
      if (u.text == "<") ++depth;
      else if (u.text == ">") --depth;
      else if (u.text == ";" || u.text == "{" || u.text == "}") break;
    }
    if (depth != 0) continue;
    // Skip ref/pointer/cv decoration between the type and the declared name.
    while (j < toks.size() &&
           ((toks[j].kind == TokKind::kPunct &&
             (toks[j].text == "&" || toks[j].text == "*")) ||
            IsIdent(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
        !Keywords().count(toks[j].text)) {
      a->unordered_vars.insert(toks[j].text);
    }
  }
}

void CollectSyncSafeClasses(Analysis* a) {
  static const std::unordered_set<std::string> kSafeMarkers = {
      "atomic", "Mutex", "MutexLock", "CondVar", "const", "constexpr",
      "static", "mutex_", "GUARDED_BY"};
  for (size_t si = 0; si < a->scopes.size(); ++si) {
    const Scope& s = a->scopes[si];
    if (s.kind != ScopeKind::kClass || s.name.empty()) continue;
    bool all_safe = true;
    // Walk the class's own tokens (nested method bodies belong to child
    // scopes and are skipped). Statements split on `;`, and also on gaps
    // left by a nested scope so a method body never glues two declarations
    // together.
    std::vector<const Token*> stmt;
    size_t prev_index = s.first_token;  // detects gaps (nested scopes)
    bool stmt_safe = false, stmt_has_paren = false, stmt_has_ident = false;
    auto flush = [&]() {
      if (stmt_has_ident && !stmt_has_paren && !stmt_safe) all_safe = false;
      stmt.clear();
      stmt_safe = stmt_has_paren = stmt_has_ident = false;
    };
    for (size_t k = s.first_token; k < s.last_token && all_safe; ++k) {
      if (a->token_scope[k] != static_cast<int>(si)) continue;
      if (k > prev_index + 1) flush();  // a nested scope intervened
      prev_index = k;
      const Token& t = a->tokens[k];
      if (IsPunct(t, ";")) { flush(); continue; }
      // Access labels restart the statement.
      if (t.kind == TokKind::kIdent &&
          (t.text == "public" || t.text == "private" ||
           t.text == "protected") &&
          k + 1 < s.last_token && IsPunct(a->tokens[k + 1], ":")) {
        flush();
        ++k;
        prev_index = k;
        continue;
      }
      if (t.kind == TokKind::kIdent &&
          (t.text == "using" || t.text == "typedef" || t.text == "friend" ||
           t.text == "static_assert" || t.text == "enum")) {
        stmt_safe = true;
      }
      if (t.kind == TokKind::kIdent && kSafeMarkers.count(t.text)) {
        stmt_safe = true;
      }
      if (IsPunct(t, "(")) stmt_has_paren = true;
      if (t.kind == TokKind::kIdent) stmt_has_ident = true;
      stmt.push_back(&t);
    }
    flush();
    if (all_safe) a->sync_safe_classes.insert(s.name);
  }
}

}  // namespace

bool Analysis::CallsTransitively(
    const std::string& name,
    const std::unordered_set<std::string>& facts) const {
  if (facts.count(name)) return true;
  std::unordered_set<int> visited;
  std::vector<int> work;
  auto push_name = [&](const std::string& n) {
    auto it = functions_by_name.find(n);
    if (it == functions_by_name.end()) return;
    for (int fi : it->second) {
      if (visited.insert(fi).second) work.push_back(fi);
    }
  };
  push_name(name);
  while (!work.empty()) {
    const FunctionInfo& fn = functions[static_cast<size_t>(work.back())];
    work.pop_back();
    for (const std::string& callee : fn.calls) {
      if (facts.count(callee)) return true;
      push_name(callee);
    }
  }
  return false;
}

int Analysis::EnclosingFunctionScope(int scope_index) const {
  for (int s = scope_index; s >= 0; s = scopes[static_cast<size_t>(s)].parent) {
    if (scopes[static_cast<size_t>(s)].function_index >= 0) return s;
  }
  return -1;
}

Analysis Analyze(const std::string& src) {
  Analysis a;
  Tokenize(src, &a);

  const std::vector<Token>& toks = a.tokens;
  a.token_scope.assign(toks.size(), 0);

  Scope file;
  file.kind = ScopeKind::kFile;
  file.first_token = 0;
  file.last_token = toks.size();
  a.scopes.push_back(file);

  std::vector<int> stack = {0};
  int pending_range_for = -1;  // RangeFor awaiting its `{`, if any

  for (size_t k = 0; k < toks.size(); ++k) {
    const Token& t = toks[k];
    a.token_scope[k] = stack.back();

    // Record every range-based for (braced or not) as we pass its header.
    if (IsIdent(t, "for") && k + 1 < toks.size() && IsPunct(toks[k + 1], "(")) {
      const size_t close = MatchingCloseParen(toks, k + 1);
      if (close != std::string::npos) {
        size_t colon = std::string::npos;
        int depth = 0;
        bool has_semi = false;
        for (size_t j = k + 1; j < close; ++j) {
          if (IsPunct(toks[j], "(")) ++depth;
          else if (IsPunct(toks[j], ")")) --depth;
          else if (depth == 1 && IsPunct(toks[j], ";")) has_semi = true;
          else if (depth == 1 && colon == std::string::npos &&
                   IsLoneColon(toks, j)) {
            colon = j;
          }
        }
        if (!has_semi && colon != std::string::npos) {
          RangeFor rf;
          rf.line = t.line;
          rf.enclosing_scope = stack.back();
          rf.range_begin = colon + 1;
          rf.range_end = close;
          pending_range_for = static_cast<int>(a.range_fors.size());
          a.range_fors.push_back(rf);
        } else {
          pending_range_for = -1;
        }
      }
    }

    if (IsPunct(t, "{")) {
      const BraceClass bc = ClassifyBrace(
          toks, k, a.scopes[static_cast<size_t>(stack.back())].kind);
      Scope s;
      s.kind = bc.kind;
      s.name = bc.name;
      s.parent = stack.back();
      s.open_line = t.line;
      s.first_token = k + 1;
      s.last_token = toks.size();  // patched when the brace closes
      const int index = static_cast<int>(a.scopes.size());

      if (bc.kind == ScopeKind::kLoop && pending_range_for >= 0 &&
          bc.paren_open != std::string::npos) {
        s.loop_is_range_for = true;
        s.range_for_index = pending_range_for;
        a.range_fors[static_cast<size_t>(pending_range_for)].scope = index;
        pending_range_for = -1;
      }
      if (bc.kind == ScopeKind::kFunction) {
        FunctionInfo fn;
        fn.scope = index;
        fn.name = bc.name;
        fn.class_name = bc.class_qualifier;  // may be refined below
        a.functions.push_back(fn);
        s.function_index = static_cast<int>(a.functions.size()) - 1;
      }
      if (bc.kind == ScopeKind::kLambda &&
          a.EnclosingFunctionScope(stack.back()) < 0) {
        // File-scope lambda (e.g. a global's immediately-invoked
        // initializer): give it facts of its own so reachability still works.
        FunctionInfo fn;
        fn.scope = index;
        a.functions.push_back(fn);
        s.function_index = static_cast<int>(a.functions.size()) - 1;
      }

      a.scopes[static_cast<size_t>(stack.back())].children.push_back(index);
      a.scopes.push_back(s);
      stack.push_back(index);
      continue;
    }

    if (IsPunct(t, "}")) {
      if (stack.size() > 1) {
        a.scopes[static_cast<size_t>(stack.back())].last_token = k;
        a.token_scope[k] =
            a.scopes[static_cast<size_t>(stack.back())].parent;
        stack.pop_back();
      }
      continue;
    }
  }
  // Unclosed scopes (truncated input): leave last_token at end-of-stream.

  // Finish function metadata now that names/classes are known.
  for (FunctionInfo& fn : a.functions) {
    const Scope& s = a.scopes[static_cast<size_t>(fn.scope)];
    for (int p = s.parent; p >= 0;
         p = a.scopes[static_cast<size_t>(p)].parent) {
      if (a.scopes[static_cast<size_t>(p)].kind == ScopeKind::kClass) {
        fn.class_name = a.scopes[static_cast<size_t>(p)].name;
        break;
      }
    }
    if (!fn.name.empty()) {
      a.functions_by_name[fn.name].push_back(
          static_cast<int>(&fn - a.functions.data()));
    }
  }

  CollectFunctionFacts(&a);
  CollectUnorderedVars(&a);
  CollectSyncSafeClasses(&a);
  return a;
}

}  // namespace vdb::lint
