// Figure 7: runtime of flat / join / nested aggregate queries under four
// error-estimation regimes, all expressed as SQL against the underlying
// engine (as a middleware must):
//   - none:          single scaled aggregate over the sample (baseline)
//   - variational:   VerdictDB's rewritten query (O(n))
//   - traditional:   subsample-table construction + per-sid case-sums
//                    (Query 1 of the paper; O(b*n))
//   - consolidated:  single pass with b Poisson-weighted resample columns
//                    (O(b*n) evaluation work)

#include <cstring>
#include <string>

#include "bench_util.h"
#include "engine/vector_eval.h"
#include "workload/synthetic.h"

namespace {

using namespace vdb;

constexpr int kB = 100;

/// The AQP hot path as the rewriter emits it: GROUP BY (g, __vdb_sid) over a
/// derived table assigning a row-addressed `1 + floor(rand() * b)` sid.
/// Sweeps 1/2/4/8 threads against the pinned-serial baseline (the
/// pre-row-addressed executor: rand() row-interpreted and pinned serial),
/// bench_micro_filter-style. Results are identical in every configuration —
/// only the execution strategy differs. Returns the best vectorized
/// single-thread speedup vs the pinned baseline.
double RunAqpThreadSweep(engine::Database* db, const std::string& table,
                         int64_t rows) {
  const std::string sql =
      "select g10, sid, sum(value) as e, count(*) as ss from (select *, 1 + "
      "floor(rand() * " +
      std::to_string(kB) + ") as sid from " + table +
      ") as t group by g10, sid";
  std::printf("\n== AQP thread sweep: GROUP BY (g, __vdb_sid) over %lld rows"
              " (b = %d) ==\n",
              static_cast<long long>(rows), kB);
  std::printf("%-38s %10s %12s %10s\n", "mode", "ms", "rows/s", "speedup");

  // One untimed warm-up first: the baseline would otherwise absorb lazy
  // thread-pool growth, page faults, and allocator warm-up as the first
  // query on a fresh database, inflating every speedup below.
  db->set_num_threads(1);
  (void)db->Execute(sql);

  engine::SetSerialRandBaselineForTest(true);
  double pinned = bench::TimeMs([&] { (void)db->Execute(sql); });
  engine::SetSerialRandBaselineForTest(false);
  std::printf("%-38s %10.1f %11.2fM %9.2fx\n",
              "pinned-serial baseline (pre-change)", pinned,
              static_cast<double>(rows) / pinned / 1e3, 1.0);
  bench::BenchJsonRecord("aqp sweep: group by (g, sid)", "pinned-serial",
                         pinned, 1);

  double speedup_1t = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    db->set_num_threads(threads);
    double ms = bench::TimeMs([&] { (void)db->Execute(sql); });
    if (threads == 1) speedup_1t = pinned / ms;
    const std::string label = "row-addressed vectorized @" +
                              std::to_string(threads) +
                              (threads == 1 ? " thread" : " threads");
    std::printf("%-38s %10.1f %11.2fM %9.2fx\n", label.c_str(), ms,
                static_cast<double>(rows) / ms / 1e3, pinned / ms);
    bench::BenchJsonRecord("aqp sweep: group by (g, sid)", "vectorized", ms,
                           threads);
  }
  db->set_num_threads(1);
  return speedup_1t;
}

struct Shape {
  const char* name;
  std::string none_sql;      // no error estimation
  std::string verdict_sql;   // original user query (VerdictDB rewrites it)
};

double RunTraditionalFlat(engine::Database* db, const std::string& sample,
                          const std::string& agg_arg, int64_t n) {
  return bench::TimeMs([&] {
    // Subsample construction: b scans of the sample (the O(b*n) part).
    (void)db->Execute("drop table if exists __ss");
    (void)db->Execute("create table __ss as select *, 1 as __sid from " +
                      sample + " where rand() < " +
                      std::to_string(1.0 / kB));
    for (int j = 2; j <= kB; ++j) {
      (void)db->Execute("insert into __ss select *, " + std::to_string(j) +
                        " as __sid from " + sample + " where rand() < " +
                        std::to_string(1.0 / kB));
    }
    // Query 1: one case-guarded sum per subsample.
    std::string q = "select ";
    for (int j = 1; j <= kB; ++j) {
      if (j > 1) q += ", ";
      q += "sum(" + agg_arg + " * (case when __sid = " + std::to_string(j) +
           " then 1.0 else 0.0 end)) as s" + std::to_string(j);
    }
    q += " from __ss";
    (void)db->Execute(q);
    (void)n;
  });
}

double RunConsolidatedFlat(engine::Database* db, const std::string& sample,
                           const std::string& agg_arg) {
  return bench::TimeMs([&] {
    std::string q = "select ";
    for (int j = 1; j <= kB; ++j) {
      if (j > 1) q += ", ";
      q += "sum(" + agg_arg + " * rand_poisson() + 0.0 * " +
           std::to_string(j) + ") as s" + std::to_string(j);
    }
    q += " from " + sample;
    (void)db->Execute(q);
  });
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke (CI sanitizer jobs): a reduced end-to-end AQP thread-sweep
  // only — sample prep + the rewritten variational query at 1/2/4/8
  // threads — small enough to finish promptly under TSan/ASan.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::BenchJsonInit("fig7", argc, argv);
  if (smoke) {
    engine::Database db(808);
    const int64_t n = 60000;
    if (!workload::GenerateSynthetic(&db, "sweep", n, 19).ok()) return 1;
    (void)RunAqpThreadSweep(&db, "sweep", n);
    core::VerdictOptions opts;
    opts.min_rows_for_sampling = 10000;
    opts.io_budget = 0.2;
    core::VerdictContext ctx(&db, driver::EngineKind::kGeneric, opts);
    if (!ctx.sample_builder().CreateUniformSample("sweep", 0.1).ok()) {
      return 1;
    }
    for (int threads : {1, 2, 8}) {
      ctx.options().num_threads = threads;
      core::VerdictContext::ExecInfo info;
      double ms = bench::TimeMs([&] {
        (void)ctx.Execute(
            "select g10, sum(value) as s from sweep group by g10", &info);
      });
      std::printf("middleware AQP e2e @%d threads: %.1f ms (%s)\n", threads,
                  ms, info.approximated ? "approx" : "EXACT!");
      if (!info.approximated) return 1;
    }
    bench::BenchJsonWrite();
    return 0;
  }

  engine::Database db(808);
  const int64_t n = 400000;
  if (!workload::GenerateSynthetic(&db, "big", n, 17).ok()) return 1;
  // Second table for the join shape.
  if (!workload::GenerateSynthetic(&db, "big2", n / 4, 18).ok()) return 1;

  core::VerdictOptions opts;
  opts.min_rows_for_sampling = 10000;
  opts.io_budget = 0.2;
  core::VerdictContext ctx(&db, driver::EngineKind::kGeneric, opts);
  if (!ctx.sample_builder().CreateHashedSample("big", "id", 0.10).ok() ||
      !ctx.sample_builder().CreateHashedSample("big2", "id", 0.10).ok() ||
      !ctx.sample_builder().CreateUniformSample("big", 0.05).ok()) {
    return 1;
  }

  std::printf("== Figure 7: error-estimation cost, all methods in SQL"
              " (b = %d) ==\n", kB);
  std::printf("%-8s %10s %12s %14s %14s\n", "shape", "none(ms)",
              "variational", "traditional", "consolidated");

  // ---- flat ---------------------------------------------------------------
  {
    double none = bench::TimeMs([&] {
      (void)db.Execute(
          "select sum(value / verdict_prob) as s from big_vdb_uniform");
    });
    core::VerdictContext::ExecInfo info;
    double vdb = bench::TimeMs([&] {
      (void)ctx.Execute("select sum(value) as s from big", &info);
    });
    double trad = RunTraditionalFlat(&db, "big_vdb_uniform", "value", n);
    double cons = RunConsolidatedFlat(&db, "big_vdb_uniform", "value");
    std::printf("%-8s %10.1f %12.1f %14.1f %14.1f   (%s)\n", "flat", none,
                vdb, trad, cons, info.approximated ? "approx" : "EXACT!");
    bench::BenchJsonRecord("fig7 flat", "none", none, 1);
    bench::BenchJsonRecord("fig7 flat", "variational", vdb, 1);
    bench::BenchJsonRecord("fig7 flat", "traditional", trad, 1);
    bench::BenchJsonRecord("fig7 flat", "consolidated", cons, 1);
  }
  // ---- join ---------------------------------------------------------------
  {
    // Materialize the joined universe sample once; the estimation methods
    // then operate on it (trad/consolidated pay O(b*n) on top).
    (void)db.Execute("drop table if exists __joined");
    (void)db.Execute(
        "create table __joined as select a.value as v, a.verdict_prob as p"
        " from big_vdb_hashed_id a inner join big2_vdb_hashed_id b"
        " on a.id = b.id");
    double none = bench::TimeMs([&] {
      (void)db.Execute("select sum(v / p) as s from __joined");
    });
    core::VerdictContext::ExecInfo info;
    double vdb = bench::TimeMs([&] {
      (void)ctx.Execute(
          "select sum(a.value) as s from big a inner join big2 b"
          " on a.id = b.id",
          &info);
    });
    double trad = RunTraditionalFlat(&db, "__joined", "v", n);
    double cons = RunConsolidatedFlat(&db, "__joined", "v");
    std::printf("%-8s %10.1f %12.1f %14.1f %14.1f   (%s)\n", "join", none,
                vdb, trad, cons, info.approximated ? "approx" : "EXACT!");
    bench::BenchJsonRecord("fig7 join", "none", none, 1);
    bench::BenchJsonRecord("fig7 join", "variational", vdb, 1);
    bench::BenchJsonRecord("fig7 join", "traditional", trad, 1);
    bench::BenchJsonRecord("fig7 join", "consolidated", cons, 1);
  }
  // ---- nested -------------------------------------------------------------
  {
    double none = bench::TimeMs([&] {
      (void)db.Execute(
          "select avg(s) as a from (select g100, sum(value / verdict_prob)"
          " as s from big_vdb_uniform group by g100) as t");
    });
    core::VerdictContext::ExecInfo info;
    double vdb = bench::TimeMs([&] {
      (void)ctx.Execute(
          "select avg(s) as a from (select g100, sum(value) as s from big"
          " group by g100) as t",
          &info);
    });
    // Traditional nested: the paper's Query 6 — one grouped select per sid.
    (void)db.Execute("drop table if exists __vt");
    (void)db.Execute("create table __vt as select *, 1 + floor(rand() * " +
                     std::to_string(kB) +
                     ") as __sid from big_vdb_uniform");
    double trad = bench::TimeMs([&] {
      for (int j = 1; j <= kB; ++j) {
        (void)db.Execute(
            "select avg(s) as a from (select g100, sum(value / verdict_prob)"
            " as s from __vt where __sid = " +
            std::to_string(j) + " group by g100) as t");
      }
    });
    double cons = bench::TimeMs([&] {
      for (int j = 1; j <= kB; ++j) {
        (void)db.Execute(
            "select avg(s) as a from (select g100,"
            " sum(value * rand_poisson() / verdict_prob) as s"
            " from big_vdb_uniform group by g100) as t");
      }
    });
    std::printf("%-8s %10.1f %12.1f %14.1f %14.1f   (%s)\n", "nested", none,
                vdb, trad, cons, info.approximated ? "approx" : "EXACT!");
    bench::BenchJsonRecord("fig7 nested", "none", none, 1);
    bench::BenchJsonRecord("fig7 nested", "variational", vdb, 1);
    bench::BenchJsonRecord("fig7 nested", "traditional", trad, 1);
    bench::BenchJsonRecord("fig7 nested", "consolidated", cons, 1);
  }
  std::printf("expected shape: variational within a small factor of 'none';"
              " traditional/consolidated ~b times slower\n");

  // ---- AQP thread sweep (the unpinned rand() hot path) --------------------
  {
    engine::Database sweep_db(909);
    const int64_t sweep_n = 1000000;
    if (!workload::GenerateSynthetic(&sweep_db, "sweep", sweep_n, 19).ok()) {
      return 1;
    }
    double speedup = RunAqpThreadSweep(&sweep_db, "sweep", sweep_n);
    std::printf("expected shape: vectorized 1-thread >= 2x over the pinned"
                " baseline (got %.2fx); additional scaling with threads\n",
                speedup);
  }
  bench::BenchJsonWrite();
  return 0;
}
