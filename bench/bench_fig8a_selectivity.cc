// Figure 8a: accuracy of variational subsampling's error estimate for a
// count query across predicate selectivities (n = 10K sample, many trials;
// groundtruth relative error known analytically).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/stats_math.h"
#include "estimator/estimators.h"

int main() {
  using namespace vdb;
  const int64_t n = 10000;
  const int trials = 300;
  const double z = NormalCriticalValue(0.95);

  std::printf("== Figure 8a: estimated vs groundtruth relative error"
              " (count query) ==\n");
  std::printf("%-12s %14s %14s %10s %10s\n", "selectivity", "groundtruth",
              "var-sub mean", "p5", "p95");
  for (double sel = 0.1; sel <= 0.91; sel += 0.1) {
    double truth = z * std::sqrt(sel * (1 - sel) / n) / sel;
    std::vector<double> rel_errs;
    for (int t = 0; t < trials; ++t) {
      Rng data(static_cast<uint64_t>(10000 + t));
      std::vector<double> indicators(n);
      for (auto& x : indicators) x = data.NextBernoulli(sel) ? 1.0 : 0.0;
      Rng rng(static_cast<uint64_t>(20000 + t));
      auto e = est::VariationalSubsampling(indicators, 1.0, 0, 0.95, &rng);
      if (e.point > 0) rel_errs.push_back(e.half_width / e.point);
    }
    std::sort(rel_errs.begin(), rel_errs.end());
    std::printf("%-12.1f %13.3f%% %13.3f%% %9.3f%% %9.3f%%\n", sel,
                truth * 100.0, Mean(rel_errs) * 100.0,
                QuantileSorted(rel_errs, 0.05) * 100.0,
                QuantileSorted(rel_errs, 0.95) * 100.0);
  }
  std::printf("expected shape: errors shrink as selectivity grows; estimates"
              " bracket the groundtruth\n");
  return 0;
}
