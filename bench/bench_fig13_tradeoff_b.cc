// Figure 13 (Appendix B.3): accuracy and latency of error-bound estimation
// as the number of resamples b grows, with the sample size fixed at n = 1M.
// Variational subsampling's b is tied to ns = n/b.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "common/stats_math.h"
#include "estimator/estimators.h"
#include "workload/synthetic.h"

int main() {
  using namespace vdb;
  const double z = NormalCriticalValue(0.95);
  const int64_t n = 1000000;
  const double truth = z * 10.0 / std::sqrt(static_cast<double>(n));
  std::printf("== Figure 13: time-error tradeoff vs resample count b"
              " (n = 1M) ==\n");
  std::printf("%-6s %-13s %16s %12s\n", "b", "method", "rel err of bound",
              "latency(ms)");
  auto xs = workload::SyntheticValues(n, 777);
  for (int b : {10, 20, 50, 100, 200, 500}) {
    struct Acc {
      const char* name;
      double err = 0, ms = 0;
    } accs[3] = {{"bootstrap"}, {"subsampling"}, {"variational"}};
    const int trials = 2;
    for (int t = 0; t < trials; ++t) {
      Rng rng(static_cast<uint64_t>(92000 + 13 * b + t));
      auto run = [&](int which) {
        auto t0 = std::chrono::steady_clock::now();
        est::ErrorEstimate e;
        switch (which) {
          case 0: e = est::Bootstrap(xs, 1.0, b, 0.95, &rng); break;
          case 1:
            e = est::TraditionalSubsampling(xs, 1.0, b, 1000, 0.95, &rng);
            break;
          default:
            e = est::VariationalSubsampling(xs, 1.0, n / b, 0.95, &rng);
        }
        auto t1 = std::chrono::steady_clock::now();
        accs[which].err += std::abs(e.half_width - truth) / truth;
        accs[which].ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
      };
      for (int m = 0; m < 3; ++m) run(m);
    }
    for (const auto& a : accs) {
      std::printf("%-6d %-13s %15.3f%% %12.3f\n", b, a.name,
                  a.err / trials * 100.0, a.ms / trials);
    }
  }
  std::printf("expected shape: accuracy improves with b for all methods;"
              " bootstrap latency grows linearly in b, variational stays"
              " one-pass\n");
  return 0;
}
