// Figure 9: VerdictDB's per-query speedups on the Spark SQL and Impala
// driver profiles (same 33-query workload as Figure 4). Spark's larger
// fixed per-query overhead dilutes the speedup, matching the paper's
// Redshift > Impala > Spark ordering.

#include <cmath>

#include "bench_util.h"

namespace {

void RunProfile(vdb::driver::EngineKind kind, const char* title) {
  using namespace vdb;
  bench::AqpFixture fx(kind, 0.8, 0.8);
  bench::PrintHeader(title);
  double geo = 0.0;
  int n = 0;
  auto run_set = [&](const std::vector<workload::WorkloadQuery>& qs) {
    for (const auto& q : qs) {
      auto o = bench::RunOne(fx, q);
      bench::PrintOutcome(o);
      geo += std::log(std::max(o.speedup, 1e-3));
      ++n;
    }
  };
  run_set(workload::TpchQueries());
  run_set(workload::InstaQueries());
  std::printf("geometric-mean speedup over %d queries: %.2fx\n\n", n,
              std::exp(geo / n));
}

}  // namespace

int main() {
  RunProfile(vdb::driver::EngineKind::kSparkSql,
             "Figure 9 (top): VerdictDB speedups (Spark SQL profile)");
  RunProfile(vdb::driver::EngineKind::kImpala,
             "Figure 9 (bottom): VerdictDB speedups (Impala profile)");
  return 0;
}
