// Figure 11: sample-preparation time in context — VerdictDB's SQL-only
// stratified sampling vs the tightly-integrated engine's in-memory
// stratified sampling, against the unavoidable data-preparation costs
// (modelled transfer throughputs; the paper measured scp to EC2 and HDFS
// uploads).

#include <cstdio>

#include "bench_util.h"
#include "integrated/integrated_aqp.h"
#include "workload/insta.h"

int main() {
  using namespace vdb;
  engine::Database db(515);
  workload::InstaConfig cfg;
  cfg.scale = 1.0;
  if (!workload::GenerateInsta(&db, cfg).ok()) return 1;

  auto t = db.catalog().GetTable("order_products");
  double bytes = static_cast<double>(t->ApproxBytes());
  // Modelled transfer throughputs (documented substitution): WAN scp at
  // 30 MB/s, intra-cluster HDFS ingest at 120 MB/s.
  double remote_s = bytes / (30.0 * 1024 * 1024);
  double intra_s = bytes / (120.0 * 1024 * 1024);

  core::VerdictOptions opts;
  opts.min_rows_for_sampling = 10000;
  core::VerdictContext ctx(&db, driver::EngineKind::kGeneric, opts);
  double vdb_ms = bench::TimeMs([&] {
    auto r = ctx.sample_builder().CreateStratifiedSample(
        "order_products", {"quantity"}, 0.05);
    if (!r.ok()) std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
  });

  integrated::IntegratedAqp snappy(&db);
  double integrated_ms = bench::TimeMs([&] {
    auto r = snappy.CreateStratifiedSample("order_products", {"quantity"},
                                           /*min_rows=*/8000);
    if (!r.ok()) std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
  });

  std::printf("== Figure 11: sample preparation vs data-preparation costs"
              " (%lld-row fact table, %.1f MB) ==\n",
              static_cast<long long>(t->num_rows()),
              bytes / (1024.0 * 1024.0));
  std::printf("%-44s %12s\n", "task", "seconds");
  std::printf("%-44s %12.2f  (modelled, 30 MB/s)\n",
              "data transfer to remote cluster", remote_s);
  std::printf("%-44s %12.2f  (modelled, 120 MB/s)\n",
              "data transfer within cluster", intra_s);
  std::printf("%-44s %12.2f  (measured)\n",
              "VerdictDB stratified sampling (SQL, 2-pass)", vdb_ms / 1000.0);
  std::printf("%-44s %12.2f  (measured)\n",
              "integrated stratified sampling (in-memory)",
              integrated_ms / 1000.0);
  std::printf("expected shape: sampling cost << transfer costs; integrated"
              " sampling faster than SQL-only sampling\n");
  return 0;
}
