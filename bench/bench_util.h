// Shared harness for the paper-reproduction benchmarks. Each bench binary
// prints the rows/series of one table or figure from the paper's evaluation
// (§6, Appendix B).

#ifndef VDB_BENCH_BENCH_UTIL_H_
#define VDB_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/verdict_context.h"
#include "driver/dialect.h"
#include "engine/database.h"
#include "workload/insta.h"
#include "workload/queries.h"
#include "workload/tpch.h"

namespace vdb::bench {

/// Wall-clock milliseconds of one call.
double TimeMs(const std::function<void()>& fn);

/// Median wall-clock milliseconds over `reps` calls (reps >= 1). The
/// machine-readable results report medians: robust to one-off scheduling
/// noise without the min's optimism.
double TimeMedianMs(int reps, const std::function<void()>& fn);

/// True when `flag` (e.g. "--json", "--smoke") appears in argv.
bool HasFlag(int argc, char** argv, const char* flag);

/// Machine-readable bench output. A bench binary calls BenchJsonInit first
/// thing in main; when --json is among the args, every BenchJsonRecord
/// appends one result row and BenchJsonWrite (end of main) writes them all
/// to BENCH_<name>.json in the working directory:
///   {"bench": "<name>", "peak_rss_bytes": <VmHWM at write time>,
///    "results": [
///     {"op": ..., "config": ..., "median_ms": ..., "threads": ...}, ...]}
/// Without --json the calls are no-ops, so the human-readable tables stay
/// the default. `op` names the measured operation, `config` the variant
/// (e.g. "scalar" vs "avx2", "bloom=on").
void BenchJsonInit(const char* bench_name, int argc, char** argv);
void BenchJsonRecord(const std::string& op, const std::string& config,
                     double median_ms, int threads);
void BenchJsonWrite();

/// Builds TPC-H + Instacart data and a VerdictContext with the standard
/// sample set used by the §6.2 / §6.3 experiments:
///   lineitem:       1% uniform, 2% universe on l_orderkey
///   orders:         5% uniform, 2% universe on o_orderkey
///   partsupp:       10% uniform, 10% universe on ps_suppkey
///   order_products: 2% uniform, 2% universe on order_id
///   orders_insta:   5% uniform, 2% universe on order_id + user_id
struct AqpFixture {
  AqpFixture(driver::EngineKind kind, double tpch_scale, double insta_scale,
             uint64_t seed = 4242);

  engine::Database db;
  std::unique_ptr<core::VerdictContext> ctx;
};

struct QueryOutcome {
  std::string id;
  double exact_ms = 0;
  double approx_ms = 0;
  double speedup = 1.0;
  bool approximated = false;
  double max_rel_err = 0.0;   // vs exact answer, across groups/aggregates
  std::string skip_reason;
};

/// Runs one workload query exactly and through VerdictDB, adding the
/// dialect's modelled fixed per-query overhead to both sides, and compares
/// answers group-by-group.
QueryOutcome RunOne(AqpFixture& fx, const workload::WorkloadQuery& q);

/// Standard per-query row printer.
void PrintHeader(const char* title);
void PrintOutcome(const QueryOutcome& o);

/// AQP-path thread sweep, bench_micro_filter-style: one untimed warm-up,
/// then the approximated query at 1/2/4/8 engine threads with speedups vs
/// the 1-thread run. Restores num_threads to 1 before returning. The
/// row-addressed rand() substrate makes the answers bit-identical at every
/// setting; only the timings differ.
void RunAqpThreadSweep(core::VerdictContext* ctx, const char* sql,
                       const char* title);

}  // namespace vdb::bench

#endif  // VDB_BENCH_BENCH_UTIL_H_
