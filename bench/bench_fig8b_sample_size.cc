// Figure 8b: quality and latency of error estimation for an avg query at
// different sample sizes, comparing CLT, bootstrap, traditional subsampling
// and variational subsampling (b limited to 100, as in the paper).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/stats_math.h"
#include "estimator/estimators.h"
#include "workload/synthetic.h"

int main() {
  using namespace vdb;
  const double z = NormalCriticalValue(0.95);
  std::printf("== Figure 8b: error-estimate quality vs sample size"
              " (avg query, b = 100) ==\n");
  std::printf("%-10s %-14s %14s %14s %12s\n", "n", "method", "est rel err",
              "groundtruth", "latency(ms)");

  struct Case {
    int64_t n;
    int trials;
  };
  for (const Case c : {Case{100000, 20}, Case{1000000, 6}, Case{10000000, 2}}) {
    double truth =
        z * 10.0 / std::sqrt(static_cast<double>(c.n)) / 10.0;  // rel err
    struct Acc {
      const char* name;
      double rel = 0, ms = 0;
    } accs[4] = {{"CLT"}, {"bootstrap"}, {"subsampling"}, {"variational"}};
    for (int t = 0; t < c.trials; ++t) {
      auto xs =
          workload::SyntheticValues(c.n, static_cast<uint64_t>(40000 + t));
      Rng rng(static_cast<uint64_t>(50000 + t));
      auto run = [&](int which) {
        auto t0 = std::chrono::steady_clock::now();
        est::ErrorEstimate e;
        switch (which) {
          case 0: e = est::CltEstimate(xs, 1.0, 0.95); break;
          case 1: e = est::Bootstrap(xs, 1.0, 100, 0.95, &rng); break;
          case 2:
            e = est::TraditionalSubsampling(
                xs, 1.0, 100,
                static_cast<int64_t>(std::sqrt(static_cast<double>(c.n))),
                0.95, &rng);
            break;
          default: e = est::VariationalSubsampling(xs, 1.0, 0, 0.95, &rng);
        }
        auto t1 = std::chrono::steady_clock::now();
        accs[which].rel += e.half_width / std::abs(e.point);
        accs[which].ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
      };
      for (int m = 0; m < 4; ++m) run(m);
    }
    for (const auto& a : accs) {
      std::printf("%-10lld %-14s %13.4f%% %13.4f%% %12.2f\n",
                  static_cast<long long>(c.n), a.name,
                  a.rel / c.trials * 100.0, truth * 100.0, a.ms / c.trials);
    }
  }
  std::printf("expected shape: all methods converge to the groundtruth as n"
              " grows; variational is the cheapest resampling method\n");
  return 0;
}
