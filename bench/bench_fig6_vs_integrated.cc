// Figure 6: AQP latency of VerdictDB (driver-level, SQL-only) vs a
// tightly-integrated AQP engine (SnappyData stand-in). The integrated engine
// is generally comparable or a bit faster — except on queries that join two
// samples (tq-5, tq-7, iq-14, iq-15), where it must read one base relation
// in full while VerdictDB joins two universe samples.

#include "integrated/integrated_aqp.h"

#include <cctype>
#include <set>

#include "bench_util.h"

int main() {
  using namespace vdb;
  bench::AqpFixture fx(driver::EngineKind::kSparkSql, 0.8, 0.8);

  integrated::IntegratedAqp snappy(&fx.db);
  for (const char* t : {"lineitem", "orders", "partsupp", "order_products",
                        "orders_insta"}) {
    if (!snappy.CreateUniformSample(t, 0.02).ok()) return 1;
  }

  std::printf(
      "== Figure 6: VerdictDB vs tightly-integrated AQP (per-query ms) ==\n");
  std::printf("%-8s %14s %14s  %s\n", "query", "integrated(ms)",
              "verdictdb(ms)", "note");

  auto run_set = [&](const std::vector<workload::WorkloadQuery>& qs) {
    for (const auto& q : qs) {
      if (q.expect_passthrough) continue;  // paper also excludes several
      double integrated_ms =
          bench::TimeMs([&] { (void)snappy.Execute(q.sql); });
      core::VerdictContext::ExecInfo info;
      double vdb_ms =
          bench::TimeMs([&] { (void)fx.ctx->Execute(q.sql, &info); });
      // A query joins two samples iff two *distinct* universe-sample tables
      // appear in the rewritten SQL.
      const char* note = "";
      {
        std::set<std::string> hashed_tables;
        const std::string& s = info.rewritten_sql;
        const std::string marker = "_vdb_hashed_";
        for (size_t pos = s.find(marker); pos != std::string::npos;
             pos = s.find(marker, pos + 1)) {
          size_t start = pos;
          while (start > 0 &&
                 (std::isalnum(static_cast<unsigned char>(s[start - 1])) ||
                  s[start - 1] == '_')) {
            --start;
          }
          size_t end = pos + marker.size();
          while (end < s.size() &&
                 (std::isalnum(static_cast<unsigned char>(s[end])) ||
                  s[end] == '_')) {
            ++end;
          }
          hashed_tables.insert(s.substr(start, end - start));
        }
        if (hashed_tables.size() >= 2) note = "sample-sample join";
      }
      std::printf("%-8s %14.1f %14.1f  %s\n", q.id.c_str(), integrated_ms,
                  vdb_ms, note);
    }
  };
  run_set(workload::TpchQueries());
  run_set(workload::InstaQueries());
  return 0;
}
