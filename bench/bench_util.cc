#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/thread_annotations.h"
#include "core/flattener.h"
#include "engine/aggregates.h"
#include "sql/parser.h"

namespace vdb::bench {

double TimeMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double TimeMedianMs(int reps, const std::function<void()>& fn) {
  std::vector<double> ms(static_cast<size_t>(std::max(1, reps)));
  for (double& m : ms) m = TimeMs(fn);
  std::sort(ms.begin(), ms.end());
  const size_t mid = ms.size() / 2;
  return ms.size() % 2 == 1 ? ms[mid] : 0.5 * (ms[mid - 1] + ms[mid]);
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

namespace {

struct JsonRow {
  std::string op, config;
  double median_ms;
  int threads;
};

// Bench mains are single-threaded today, but RunAqpThreadSweep-style
// helpers are one refactor away from recording from worker callbacks — so
// the accumulated rows are guarded now and the contract is machine-checked
// under -Wthread-safety rather than re-derived at each call site.
struct JsonState {
  Mutex mu;
  bool enabled GUARDED_BY(mu) = false;
  std::string name GUARDED_BY(mu);
  std::vector<JsonRow> rows GUARDED_BY(mu);
};

JsonState& Json() {
  static JsonState state;
  return state;
}

// Peak resident set size of this process in bytes (VmHWM from
// /proc/self/status); 0 where the proc interface is unavailable. Recorded in
// the JSON envelope so perf tracking catches memory regressions, not just
// time ones.
uint64_t PeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  unsigned long long kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return static_cast<uint64_t>(kb) * 1024;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void BenchJsonInit(const char* bench_name, int argc, char** argv) {
  JsonState& j = Json();
  MutexLock lock(j.mu);
  j.name = bench_name;
  j.enabled = HasFlag(argc, argv, "--json");
}

void BenchJsonRecord(const std::string& op, const std::string& config,
                     double median_ms, int threads) {
  JsonState& j = Json();
  MutexLock lock(j.mu);
  if (!j.enabled) return;
  j.rows.push_back(JsonRow{op, config, median_ms, threads});
}

void BenchJsonWrite() {
  JsonState& j = Json();
  MutexLock lock(j.mu);
  if (!j.enabled) return;
  const std::string path = "BENCH_" + j.name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\"bench\": \"%s\", \"peak_rss_bytes\": %llu, "
               "\"results\": [\n",
               JsonEscape(j.name).c_str(),
               static_cast<unsigned long long>(PeakRssBytes()));
  for (size_t i = 0; i < j.rows.size(); ++i) {
    const JsonRow& r = j.rows[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"config\": \"%s\", \"median_ms\": %.4f, "
                 "\"threads\": %d}%s\n",
                 JsonEscape(r.op).c_str(), JsonEscape(r.config).c_str(),
                 r.median_ms, r.threads, i + 1 < j.rows.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu results)\n", path.c_str(), j.rows.size());
}

AqpFixture::AqpFixture(driver::EngineKind kind, double tpch_scale,
                       double insta_scale, uint64_t seed)
    : db(seed) {
  if (tpch_scale > 0) {
    workload::TpchConfig tc;
    tc.scale = tpch_scale;
    auto st = workload::GenerateTpch(&db, tc);
    if (!st.ok()) {
      std::fprintf(stderr, "tpch generation failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
  }
  if (insta_scale > 0) {
    workload::InstaConfig ic;
    ic.scale = insta_scale;
    auto st = workload::GenerateInsta(&db, ic);
    if (!st.ok()) {
      std::fprintf(stderr, "insta generation failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
  }
  core::VerdictOptions opts;
  opts.min_rows_for_sampling = 30000;  // part/customer are dimension-sized
  opts.io_budget = 0.12;
  opts.min_tuples_per_group = 16;
  ctx = std::make_unique<core::VerdictContext>(&db, kind, opts);

  auto& b = ctx->sample_builder();
  auto make = [&](auto&& fn) {
    auto r = fn();
    if (!r.ok()) {
      std::fprintf(stderr, "sample prep failed: %s\n",
                   r.status().ToString().c_str());
    }
  };
  if (tpch_scale > 0) {
    make([&] { return b.CreateUniformSample("lineitem", 0.01); });
    make([&] { return b.CreateHashedSample("lineitem", "l_orderkey", 0.02); });
    make([&] { return b.CreateHashedSample("lineitem", "l_partkey", 0.02); });
    make([&] { return b.CreateUniformSample("orders", 0.05); });
    make([&] { return b.CreateHashedSample("orders", "o_orderkey", 0.02); });
    make([&] { return b.CreateUniformSample("partsupp", 0.10); });
    make([&] { return b.CreateHashedSample("partsupp", "ps_suppkey", 0.10); });
    make([&] { return b.CreateHashedSample("partsupp", "ps_partkey", 0.10); });
  }
  if (insta_scale > 0) {
    make([&] { return b.CreateUniformSample("order_products", 0.02); });
    make([&] {
      return b.CreateHashedSample("order_products", "order_id", 0.02);
    });
    make([&] { return b.CreateUniformSample("orders_insta", 0.05); });
    make([&] {
      return b.CreateHashedSample("orders_insta", "order_id", 0.02);
    });
    make([&] {
      return b.CreateHashedSample("orders_insta", "user_id", 0.02);
    });
  }
}

namespace {

/// Compares an approximate result against the exact one, matching rows by
/// the non-aggregate columns and returning the max relative error over all
/// aggregate cells (ignoring near-zero exact cells).
double CompareAnswers(const core::ApproxAnswer& approx,
                      const engine::ResultSet& exact) {
  if (approx.aggregates.empty()) return 0.0;
  std::vector<int> agg_cols;
  for (const auto& a : approx.aggregates) agg_cols.push_back(a.point_column);
  std::vector<int> key_cols;
  size_t user_cols = exact.NumCols();  // exact result has no _err columns
  for (size_t c = 0; c < user_cols; ++c) {
    if (std::find(agg_cols.begin(), agg_cols.end(), static_cast<int>(c)) ==
        agg_cols.end()) {
      key_cols.push_back(static_cast<int>(c));
    }
  }
  auto key_of = [&](const engine::ResultSet& rs, size_t row) {
    std::string k;
    for (int c : key_cols) {
      k += engine::ValueGroupKey(rs.Get(row, static_cast<size_t>(c)));
      k.push_back('\x1f');
    }
    return k;
  };
  std::map<std::string, size_t> exact_rows;
  for (size_t r = 0; r < exact.NumRows(); ++r) exact_rows[key_of(exact, r)] = r;

  double max_rel = 0.0;
  for (size_t r = 0; r < approx.result.NumRows(); ++r) {
    auto it = exact_rows.find(key_of(approx.result, r));
    if (it == exact_rows.end()) continue;
    for (int c : agg_cols) {
      double truth = exact.GetDouble(it->second, static_cast<size_t>(c));
      double est = approx.result.GetDouble(r, static_cast<size_t>(c));
      if (std::abs(truth) < 1e-9) continue;
      max_rel = std::max(max_rel, std::abs(est - truth) / std::abs(truth));
    }
  }
  return max_rel;
}

}  // namespace

QueryOutcome RunOne(AqpFixture& fx, const workload::WorkloadQuery& q) {
  QueryOutcome o;
  o.id = q.id;
  const double overhead =
      fx.ctx->connection().dialect().fixed_overhead_ms;

  engine::ResultSet exact;
  o.exact_ms = TimeMs([&] {
                 // Correlated subqueries need flattening even for the exact
                 // run (the engine has no native correlated evaluation).
                 auto parsed = sql::ParseStatement(q.sql);
                 if (parsed.ok() &&
                     parsed.value()->kind == sql::StatementKind::kSelect) {
                   (void)core::FlattenComparisonSubqueries(
                       parsed.value()->select.get());
                   auto rs = fx.db.ExecuteSelect(*parsed.value()->select);
                   if (rs.ok()) exact = std::move(rs).ValueOrDie();
                 } else {
                   auto rs = fx.db.Execute(q.sql);
                   if (rs.ok()) exact = std::move(rs).ValueOrDie();
                 }
               }) +
               overhead;

  core::VerdictContext::ExecInfo info;
  core::ApproxAnswer approx;
  o.approx_ms = TimeMs([&] {
                  auto rs = fx.ctx->ExecuteApprox(q.sql, &info);
                  if (rs.ok()) approx = std::move(rs).ValueOrDie();
                }) +
                overhead;
  o.approximated = info.approximated;
  o.skip_reason = info.skip_reason;
  o.speedup = o.exact_ms / std::max(o.approx_ms, 1e-3);
  if (info.approximated) o.max_rel_err = CompareAnswers(approx, exact);
  return o;
}

void PrintHeader(const char* title) {
  std::printf("== %s ==\n", title);
  std::printf("%-8s %12s %12s %9s %9s  %s\n", "query", "exact(ms)",
              "verdict(ms)", "speedup", "rel.err", "mode");
}

void PrintOutcome(const QueryOutcome& o) {
  std::string mode =
      o.approximated ? std::string("approx") : "exact: " + o.skip_reason;
  std::printf("%-8s %12.1f %12.1f %8.2fx %8.2f%%  %s\n", o.id.c_str(),
              o.exact_ms, o.approx_ms, o.speedup, o.max_rel_err * 100.0,
              mode.c_str());
}

void RunAqpThreadSweep(core::VerdictContext* ctx, const char* sql,
                       const char* title) {
  std::printf("\n== %s ==\n", title);
  std::printf("%-10s %12s %10s\n", "threads", "approx(ms)", "speedup");
  (void)ctx->Execute(sql);  // untimed warm-up
  double base_ms = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    ctx->options().num_threads = threads;
    core::VerdictContext::ExecInfo info;
    double ms = TimeMs([&] { (void)ctx->Execute(sql, &info); });
    if (threads == 1) base_ms = ms;
    std::printf("%-10d %12.1f %9.2fx  (%s)\n", threads, ms, base_ms / ms,
                info.approximated ? "approx" : info.skip_reason.c_str());
  }
  ctx->options().num_threads = 1;
}

}  // namespace vdb::bench
