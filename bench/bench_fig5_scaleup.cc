// Figure 5: speedup vs. original data size with a FIXED sample size
// (paper: 5 GB sample; 5 GB -> 500 GB data; speedup grows with data size).
// Here the lineitem sample is held at ~3000 rows while the data scales.

#include "bench_util.h"
#include "workload/tpch.h"

int main() {
  using namespace vdb;
  const char* kQ6 =
      "select sum(l_extendedprice * l_discount) as revenue from lineitem"
      " where l_shipdate >= 19940101 and l_shipdate < 19950101"
      " and l_discount between 0.05 and 0.07 and l_quantity < 24";
  const char* kQ14 =
      "select sum(case when p_type like 'PROMO%' then"
      " l_extendedprice * (1 - l_discount) else 0.0 end) /"
      " sum(l_extendedprice * (1 - l_discount)) as promo_revenue"
      " from lineitem inner join part on l_partkey = p_partkey"
      " where l_shipdate >= 19950901 and l_shipdate < 19951101";

  std::printf("== Figure 5: speedup vs data size (fixed ~3000-row sample) ==\n");
  std::printf("%-10s %12s %12s %10s %12s %12s %10s\n", "scale", "tq6-exact",
              "tq6-vdb", "tq6-spd", "tq14-exact", "tq14-vdb", "tq14-spd");

  for (double scale : {0.05, 0.15, 0.4, 1.0}) {
    engine::Database db(321);
    workload::TpchConfig cfg;
    cfg.scale = scale;
    if (!workload::GenerateTpch(&db, cfg).ok()) return 1;
    core::VerdictOptions opts;
    opts.min_rows_for_sampling = 25000;
    opts.io_budget = 1.0;  // the fixed sample always fits
    core::VerdictContext ctx(&db, driver::EngineKind::kRedshift, opts);
    auto lineitem = db.catalog().GetTable("lineitem");
    double tau = 3000.0 / static_cast<double>(lineitem->num_rows());
    if (!ctx.sample_builder().CreateUniformSample("lineitem", tau).ok()) {
      return 1;
    }
    const double oh =
        driver::GetDialect(driver::EngineKind::kRedshift).fixed_overhead_ms;
    auto measure = [&](const char* sql, double* exact_ms, double* vdb_ms) {
      *exact_ms = bench::TimeMs([&] { (void)db.Execute(sql); }) + oh;
      core::VerdictContext::ExecInfo info;
      *vdb_ms = bench::TimeMs([&] { (void)ctx.Execute(sql, &info); }) + oh;
      if (!info.approximated) {
        std::fprintf(stderr, "  [scale %.2f] not approximated: %s\n", scale,
                     info.skip_reason.c_str());
      }
    };
    double e6, v6, e14, v14;
    measure(kQ6, &e6, &v6);
    measure(kQ14, &e14, &v14);
    std::printf("%-10.2f %12.1f %12.1f %9.2fx %12.1f %12.1f %9.2fx\n", scale,
                e6, v6, e6 / v6, e14, v14, e14 / v14);

    if (scale == 1.0) {
      // AQP-path thread sweep at the largest scale: the rewritten
      // variational query (row-addressed rand() sid) on 1/2/4/8 engine
      // threads. Restores num_threads to 1 afterwards, so adding larger
      // scales to the list keeps their exact-vs-vdb timings comparable.
      bench::RunAqpThreadSweep(&ctx, kQ6,
                               "AQP query thread sweep (tq6 @ scale 1.0)");
    }
  }
  std::printf("expected shape: speedup grows with the data/sample ratio\n");
  return 0;
}
