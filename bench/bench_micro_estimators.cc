// Micro-benchmarks (google-benchmark) for the error-estimation kernels and
// the engine's scan/aggregate path. Complements the figure benches with
// steady-state numbers.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/database.h"
#include "estimator/estimators.h"
#include "workload/synthetic.h"

namespace {

using namespace vdb;

void BM_VariationalSubsampling(benchmark::State& state) {
  auto xs = workload::SyntheticValues(state.range(0), 1);
  Rng rng(2);
  for (auto _ : state) {
    auto e = est::VariationalSubsampling(xs, 1.0, 0, 0.95, &rng);
    benchmark::DoNotOptimize(e.half_width);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VariationalSubsampling)->Arg(100000)->Arg(1000000);

void BM_Bootstrap100(benchmark::State& state) {
  auto xs = workload::SyntheticValues(state.range(0), 3);
  Rng rng(4);
  for (auto _ : state) {
    auto e = est::Bootstrap(xs, 1.0, 100, 0.95, &rng);
    benchmark::DoNotOptimize(e.half_width);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 100);
}
BENCHMARK(BM_Bootstrap100)->Arg(100000);

void BM_TraditionalSubsampling100(benchmark::State& state) {
  auto xs = workload::SyntheticValues(state.range(0), 5);
  Rng rng(6);
  for (auto _ : state) {
    auto e = est::TraditionalSubsampling(xs, 1.0, 100, 1000, 0.95, &rng);
    benchmark::DoNotOptimize(e.half_width);
  }
}
BENCHMARK(BM_TraditionalSubsampling100)->Arg(100000);

void BM_EngineFilterAggregate(benchmark::State& state) {
  engine::Database db(7);
  if (!workload::GenerateSynthetic(&db, "t", state.range(0), 8).ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  for (auto _ : state) {
    auto rs = db.Execute(
        "select g10, sum(value) as s, count(*) as c from t"
        " where u < 0.5 group by g10");
    benchmark::DoNotOptimize(rs.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineFilterAggregate)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_EngineHashJoin(benchmark::State& state) {
  engine::Database db(9);
  if (!workload::GenerateSynthetic(&db, "a", state.range(0), 10).ok() ||
      !workload::GenerateSynthetic(&db, "b", state.range(0) / 4, 11).ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  for (auto _ : state) {
    auto rs = db.Execute(
        "select count(*) as c from a inner join b on a.g100 = b.g100"
        " where a.u < 0.1 and b.u < 0.1");
    benchmark::DoNotOptimize(rs.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineHashJoin)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
