// Figure 4: VerdictDB's per-query speedups on the Redshift driver profile,
// over the 33-query workload (18 TPC-H + 15 insta micro-benchmarks).

#include <cmath>
#include <string>

#include "bench_util.h"

int main() {
  using namespace vdb;
  bench::AqpFixture fx(driver::EngineKind::kRedshift, /*tpch_scale=*/0.8,
                       /*insta_scale=*/0.8);
  bench::PrintHeader("Figure 4: VerdictDB speedups (Redshift profile)");
  double geo = 0.0;
  int n = 0;
  auto run_set = [&](const std::vector<workload::WorkloadQuery>& qs) {
    for (const auto& q : qs) {
      auto o = bench::RunOne(fx, q);
      bench::PrintOutcome(o);
      geo += std::log(std::max(o.speedup, 1e-3));
      ++n;
    }
  };
  run_set(workload::TpchQueries());
  run_set(workload::InstaQueries());
  std::printf("geometric-mean speedup over %d queries: %.2fx\n", n,
              std::exp(geo / n));

  // The rewritten variational query (GROUP BY g, __vdb_sid with a
  // row-addressed rand() sid) at 1/2/4/8 engine threads: the subsample hot
  // path now rides the parallel substrate instead of the serial rand() pin.
  bench::RunAqpThreadSweep(
      fx.ctx.get(),
      "select l_returnflag, count(*) as c, sum(l_extendedprice) as s,"
      " avg(l_discount) as a from lineitem group by l_returnflag",
      "AQP query thread sweep (TPC-H Q1-shaped aggregate)");
  return 0;
}
