// Table 2: sampling-based AQP vs the engines' native (sketch-based)
// approximate aggregates. Native ndv()/approx_median() require a full scan;
// VerdictDB reads only a sample.

#include <cmath>

#include "bench_util.h"

int main() {
  using namespace vdb;
  bench::AqpFixture fx(driver::EngineKind::kGeneric, /*tpch_scale=*/0,
                       /*insta_scale=*/1.0);

  auto exact_d = fx.db.Execute(
      "select count(distinct user_id) as d from orders_insta");
  auto exact_m =
      fx.db.Execute("select median(price) as m from order_products");
  if (!exact_d.ok() || !exact_m.ok()) return 1;
  double true_d = exact_d.value().GetDouble(0, 0);
  double true_m = exact_m.value().GetDouble(0, 0);

  std::printf("== Table 2: sampling-based AQP vs native approximation ==\n");
  std::printf("%-34s %12s %10s\n", "method", "runtime(ms)", "rel.err");

  // (a) count-distinct.
  {
    core::VerdictContext::ExecInfo info;
    engine::ResultSet rs;
    double vdb_ms = bench::TimeMs([&] {
      auto r = fx.ctx->Execute(
          "select count(distinct user_id) as d from orders_insta", &info);
      if (r.ok()) rs = std::move(r).ValueOrDie();
    });
    double rel = std::abs(rs.GetDouble(0, 0) - true_d) / true_d;
    std::printf("%-34s %12.1f %9.2f%%  %s\n",
                "Verdict count-distinct (sample)", vdb_ms, rel * 100.0,
                info.approximated ? "" : "(not approximated!)");

    engine::ResultSet nat;
    double native_ms = bench::TimeMs([&] {
      auto r = fx.db.Execute("select ndv(user_id) as d from orders_insta");
      if (r.ok()) nat = std::move(r).ValueOrDie();
    });
    rel = std::abs(nat.GetDouble(0, 0) - true_d) / true_d;
    std::printf("%-34s %12.1f %9.2f%%\n",
                "native ndv() (HyperLogLog full scan)", native_ms,
                rel * 100.0);
  }
  // (b) median.
  {
    core::VerdictContext::ExecInfo info;
    engine::ResultSet rs;
    double vdb_ms = bench::TimeMs([&] {
      auto r = fx.ctx->Execute(
          "select median(price) as m from order_products", &info);
      if (r.ok()) rs = std::move(r).ValueOrDie();
    });
    double rel = std::abs(rs.GetDouble(0, 0) - true_m) / std::abs(true_m);
    std::printf("%-34s %12.1f %9.2f%%  %s\n", "Verdict median (sample)",
                vdb_ms, rel * 100.0,
                info.approximated ? "" : "(not approximated!)");

    engine::ResultSet nat;
    double native_ms = bench::TimeMs([&] {
      auto r = fx.db.Execute(
          "select approx_median(price) as m from order_products");
      if (r.ok()) nat = std::move(r).ValueOrDie();
    });
    rel = std::abs(nat.GetDouble(0, 0) - true_m) / std::abs(true_m);
    std::printf("%-34s %12.1f %9.2f%%\n",
                "native approx_median (full scan)", native_ms, rel * 100.0);
  }
  std::printf("expected shape: sampling-based runtimes are much lower; both"
              " methods stay within a few %% error\n");
  return 0;
}
