// Figure 10: actual relative errors of VerdictDB's approximate answers for
// all 33 workload queries (paper: 0.03%-2.57%; errors are engine-agnostic,
// so one profile suffices).

#include "bench_util.h"

int main() {
  using namespace vdb;
  bench::AqpFixture fx(driver::EngineKind::kGeneric, 0.8, 0.8);
  std::printf("== Figure 10: actual relative errors ==\n");
  std::printf("%-8s %10s  %s\n", "query", "rel.err", "mode");
  double worst = 0.0;
  auto run_set = [&](const std::vector<workload::WorkloadQuery>& qs) {
    for (const auto& q : qs) {
      auto o = bench::RunOne(fx, q);
      std::printf("%-8s %9.3f%%  %s\n", o.id.c_str(), o.max_rel_err * 100.0,
                  o.approximated ? "approx" : "exact (passthrough)");
      if (o.approximated) worst = std::max(worst, o.max_rel_err);
    }
  };
  run_set(workload::TpchQueries());
  run_set(workload::InstaQueries());
  std::printf("max relative error across approximated queries: %.2f%%\n",
              worst * 100.0);
  return 0;
}
