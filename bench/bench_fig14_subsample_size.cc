// Figure 14 (Appendix B.3): effect of the subsample size ns on variational
// subsampling's error-bound accuracy at fixed n = 500K. Reported for both
// a Gaussian column (the paper's N(10,10)) and a skewed chi-square(1)
// column where the small-ns non-normality penalty is visible — this doubles
// as the ablation for the ns = n^(1/2) default called out in DESIGN.md.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/stats_math.h"
#include "estimator/estimators.h"
#include "workload/synthetic.h"

int main() {
  using namespace vdb;
  const int64_t n = 500000;
  const double z = NormalCriticalValue(0.95);
  const int trials = 8;

  std::printf("== Figure 14: error vs subsample size ns (n = 500K) ==\n");
  std::printf("%-10s %20s %22s\n", "ns", "rel err (gaussian)",
              "rel err (chi-square)");
  for (double e : {0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0, 0.75}) {
    int64_t ns = static_cast<int64_t>(
        std::pow(static_cast<double>(n), e));
    double err_g = 0, err_c = 0;
    for (int t = 0; t < trials; ++t) {
      // Gaussian N(10,10).
      auto xs =
          workload::SyntheticValues(n, static_cast<uint64_t>(95000 + t));
      double truth_g = z * 10.0 / std::sqrt(static_cast<double>(n));
      Rng r1(static_cast<uint64_t>(96000 + t));
      auto eg = est::VariationalSubsampling(xs, 1.0, ns, 0.95, &r1);
      err_g += std::abs(eg.half_width - truth_g) / truth_g;
      // Chi-square(1): mean 1, sd sqrt(2), heavy right tail.
      Rng data(static_cast<uint64_t>(97000 + t));
      for (auto& x : xs) {
        double g = data.NextGaussian();
        x = g * g;
      }
      double truth_c = z * std::sqrt(2.0) / std::sqrt(static_cast<double>(n));
      Rng r2(static_cast<uint64_t>(98000 + t));
      auto ec = est::VariationalSubsampling(xs, 1.0, ns, 0.95, &r2);
      err_c += std::abs(ec.half_width - truth_c) / truth_c;
    }
    std::printf("n^%-7.3f %19.3f%% %21.3f%%\n", e, err_g / trials * 100.0,
                err_c / trials * 100.0);
  }
  std::printf("expected shape: ns = n^(1/2) near-optimal; large ns suffers"
              " from few subsamples, tiny ns from non-normality (visible in"
              " the skewed column)\n");
  return 0;
}
