// Figure 12 (Appendix B.3): accuracy and latency of error-bound estimation
// as the sample size n grows, with the number of resamples fixed at b = 1000
// for bootstrap/traditional subsampling and ns = sqrt(n) for variational.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "common/stats_math.h"
#include "estimator/estimators.h"
#include "workload/synthetic.h"

int main() {
  using namespace vdb;
  const double z = NormalCriticalValue(0.95);
  const int kB = 1000;
  std::printf("== Figure 12: time-error tradeoff vs sample size n"
              " (b = %d) ==\n", kB);
  std::printf("%-9s %-13s %16s %12s\n", "n", "method",
              "rel err of bound", "latency(ms)");
  for (int64_t n : {10000, 20000, 40000, 60000, 80000, 100000}) {
    const int trials = 5;
    double truth = z * 10.0 / std::sqrt(static_cast<double>(n));
    struct Acc {
      const char* name;
      double err = 0, ms = 0;
    } accs[3] = {{"bootstrap"}, {"subsampling"}, {"variational"}};
    for (int t = 0; t < trials; ++t) {
      auto xs =
          workload::SyntheticValues(n, static_cast<uint64_t>(90000 + t));
      Rng rng(static_cast<uint64_t>(91000 + t));
      auto run = [&](int which) {
        auto t0 = std::chrono::steady_clock::now();
        est::ErrorEstimate e;
        switch (which) {
          case 0: e = est::Bootstrap(xs, 1.0, kB, 0.95, &rng); break;
          case 1:
            e = est::TraditionalSubsampling(
                xs, 1.0, kB,
                static_cast<int64_t>(std::sqrt(static_cast<double>(n))),
                0.95, &rng);
            break;
          default: e = est::VariationalSubsampling(xs, 1.0, 0, 0.95, &rng);
        }
        auto t1 = std::chrono::steady_clock::now();
        accs[which].err += std::abs(e.half_width - truth) / truth;
        accs[which].ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
      };
      for (int m = 0; m < 3; ++m) run(m);
    }
    for (const auto& a : accs) {
      std::printf("%-9lld %-13s %15.3f%% %12.3f\n",
                  static_cast<long long>(n), a.name,
                  a.err / trials * 100.0, a.ms / trials);
    }
  }
  std::printf("expected shape: bootstrap slightly more accurate; variational"
              " orders of magnitude faster at equal n\n");
  return 0;
}
