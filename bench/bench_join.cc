// Join benchmark: the flat radix-partitioned hash join vs. the old per-row
// string-key std::unordered_map join (kept here as the baseline), swept over
// build-side sizes (1K / 32K / 1M), key cardinalities (unique / skewed /
// hot-key) and 1/2/4/8 threads.
//
// Probe sizes are chosen so every configuration emits ~build_size output
// pairs — the modes differ in duplicate-chain length (1 / 16 / n/256), not
// output volume, so timings compare build+probe cost, not gather volume.
// Both sides share the combined-gather code path (GatherJoinPairsInto), so
// the delta is purely key hashing + table build + probe.
//
// Acceptance bar (ISSUE 4): >= 3x single-thread build+probe speedup over
// the string-map baseline on the 1M-row unique-key case.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "engine/aggregates.h"
#include "engine/join_table.h"
#include "engine/operators.h"
#include "engine/table.h"

namespace vdb::engine {
namespace {

constexpr uint32_t kNullRow = JoinPairView::kNullRightRow;

/// Key cardinality shapes. Every shape emits ~build_size pairs.
enum Mode : int { kUnique = 0, kSkewed = 1, kHotKey = 2 };

size_t KeyDomain(size_t build_rows, int mode) {
  switch (mode) {
    case kUnique:
      return build_rows;
    case kSkewed:
      return std::max<size_t>(1, build_rows / 16);
    default:  // kHotKey: 256 keys, each with build_rows/256 duplicates.
      return std::min<size_t>(256, build_rows);
  }
}

size_t ProbeRows(size_t build_rows, int mode) {
  // ~one emitted pair per build row: probe_rows * (build_rows / domain).
  return KeyDomain(build_rows, mode);
}

TablePtr MakeSide(size_t rows, size_t key_domain, bool sequential,
                  uint64_t seed, const char* payload) {
  Rng rng(seed);
  std::vector<int64_t> keys(rows), pay(rows);
  for (size_t r = 0; r < rows; ++r) {
    keys[r] = sequential ? static_cast<int64_t>(r % key_domain)
                         : static_cast<int64_t>(rng.NextBounded(key_domain));
    pay[r] = static_cast<int64_t>(r);
  }
  auto t = std::make_shared<Table>();
  t->AddColumn("k", Column::FromData(TypeId::kInt64, std::move(keys), {}, {},
                                     {}));
  t->AddColumn(payload, Column::FromData(TypeId::kInt64, std::move(pay), {},
                                         {}, {}));
  return t;
}

struct JoinInput {
  TablePtr probe, build;
};

/// One input per (build_rows, mode), built once and shared across the
/// baseline and every thread count so all variants join identical data.
const JoinInput& InputFor(size_t build_rows, int mode) {
  static std::map<std::pair<size_t, int>, JoinInput>* cache =
      new std::map<std::pair<size_t, int>, JoinInput>();
  auto it = cache->find({build_rows, mode});
  if (it == cache->end()) {
    const size_t domain = KeyDomain(build_rows, mode);
    JoinInput in;
    in.build = MakeSide(build_rows, domain, /*sequential=*/true, 7, "rv");
    in.probe =
        MakeSide(ProbeRows(build_rows, mode), domain, /*sequential=*/false,
                 11, "lv");
    it = cache->emplace(std::make_pair(build_rows, mode), std::move(in)).first;
  }
  return it->second;
}

/// The pre-rewrite join, verbatim in shape: per-row ValueGroupKey string
/// keys on both sides, serial std::unordered_map<string, vector> build,
/// left-row-major probe. The combined gather is shared with the new path.
TablePtr StringMapJoinBaseline(const Table& left, const Table& right) {
  auto key_of = [](const Table& t, size_t row, bool* has_null) {
    Value v = t.column(0).Get(row);
    *has_null = v.is_null();
    std::string key = ValueGroupKey(v);
    key.push_back('\x1f');
    return key;
  };
  std::unordered_map<std::string, std::vector<uint32_t>> build;
  build.reserve(right.num_rows());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    bool has_null = false;
    std::string key = key_of(right, r, &has_null);
    if (!has_null) build[key].push_back(static_cast<uint32_t>(r));
  }
  SelVector out_l, out_r;
  for (size_t lr = 0; lr < left.num_rows(); ++lr) {
    bool has_null = false;
    std::string key = key_of(left, lr, &has_null);
    if (has_null) continue;
    auto it = build.find(key);
    if (it == build.end()) continue;
    for (uint32_t rr : it->second) {
      out_l.push_back(static_cast<uint32_t>(lr));
      out_r.push_back(rr);
    }
  }
  auto out = std::make_shared<Table>();
  GatherJoinPairsInto(left, out_l.data(), right, out_r.data(), out_l.size(),
                      1, out.get());
  (void)kNullRow;
  return out;
}

void BM_JoinStringMapBaseline(benchmark::State& state) {
  const JoinInput& in = InputFor(static_cast<size_t>(state.range(0)),
                                 static_cast<int>(state.range(1)));
  size_t out_rows = 0;
  for (auto _ : state) {
    TablePtr out = StringMapJoinBaseline(*in.probe, *in.build);
    out_rows = out->num_rows();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(static_cast<uint64_t>(state.iterations()) *
                           out_rows));
  state.counters["out_rows"] = static_cast<double>(out_rows);
}

void BM_JoinRadix(benchmark::State& state) {
  const JoinInput& in = InputFor(static_cast<size_t>(state.range(0)),
                                 static_cast<int>(state.range(1)));
  const int threads = static_cast<int>(state.range(2));
  size_t out_rows = 0;
  for (auto _ : state) {
    auto out = HashJoin(*in.probe, *in.build, std::vector<int>{0},
                        std::vector<int>{0}, sql::JoinType::kInner, nullptr,
                        /*rand_seed=*/1, threads);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    out_rows = out.value()->num_rows();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(static_cast<uint64_t>(state.iterations()) *
                           out_rows));
  state.counters["out_rows"] = static_cast<double>(out_rows);
}

BENCHMARK(BM_JoinStringMapBaseline)
    ->ArgNames({"build", "mode"})
    ->ArgsProduct({{1 << 10, 1 << 15, 1 << 20}, {kUnique, kSkewed, kHotKey}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_JoinRadix)
    ->ArgNames({"build", "mode", "threads"})
    ->ArgsProduct({{1 << 10, 1 << 15, 1 << 20},
                   {kUnique, kSkewed, kHotKey},
                   {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

/// Bloom pre-probe section: a build side big enough to enable the filter
/// automatically, probed at two hit rates. Low-hit probes are the filter's
/// target — most probe rows are rejected by a single gathered Bloom word
/// instead of a slot-array walk — while the 100%-hit probe bounds the
/// overhead when the filter never rejects anything. Every (on, off) pair is
/// differentially checked: the filter has no false negatives, so the pair
/// lists must be identical element for element.
bool RunBloomSection(bool smoke) {
  using vdb::bench::BenchJsonRecord;
  using vdb::bench::TimeMedianMs;

  const size_t build_rows = smoke ? (1 << 16) : (1 << 20);
  const size_t probe_rows = smoke ? (1 << 18) : (1 << 21);
  const int reps = smoke ? 3 : 5;
  // Low hit rate: probe keys span 64x the build domain (~1.6% hits).
  // Full hit rate: probe keys drawn from the build domain itself.
  struct HitCase {
    const char* label;
    size_t probe_domain;
  };
  const HitCase hit_cases[] = {
      {"low-hit (~1.6%)", build_rows * 64},
      {"all-hit (100%)", build_rows},
  };

  TablePtr build = MakeSide(build_rows, build_rows, /*sequential=*/true, 7,
                            "rv");
  std::printf("\n== join Bloom pre-probe: build=%zu probe=%zu ==\n",
              build_rows, probe_rows);
  std::printf("%-18s %-6s %12s %12s %9s  %s\n", "probe mix", "thr",
              "off ms", "on ms", "speedup", "pairs (off == on)");

  bool all_ok = true;
  for (const HitCase& hc : hit_cases) {
    TablePtr probe = MakeSide(probe_rows, hc.probe_domain,
                              /*sequential=*/false, 11, "lv");
    const std::vector<const Column*> lk{&probe->column(0)};
    const std::vector<const Column*> rk{&build->column(0)};
    for (int threads : smoke ? std::vector<int>{1} : std::vector<int>{1, 2}) {
      auto run_pairs = [&](int bloom_mode, size_t* pairs) {
        SetJoinBloomForTest(bloom_mode);
        auto out = HashJoinPairs(probe, build, lk, rk, sql::JoinType::kInner,
                                 nullptr, /*rand_seed=*/1, threads);
        SetJoinBloomForTest(-1);
        if (!out.ok()) {
          std::printf("ERROR: %s\n", out.status().ToString().c_str());
          return false;
        }
        *pairs = out.value().num_pairs();
        return true;
      };
      size_t pairs_off = 0, pairs_on = 0;
      bool ok = true;
      const double off_ms = TimeMedianMs(
          reps, [&] { ok = ok && run_pairs(0, &pairs_off); });
      const double on_ms = TimeMedianMs(
          reps, [&] { ok = ok && run_pairs(1, &pairs_on); });
      if (!ok) {
        all_ok = false;
        continue;
      }
      // Differential: identical pair lists element for element (no false
      // negatives), checked directly once per configuration.
      SetJoinBloomForTest(0);
      auto ref = HashJoinPairs(probe, build, lk, rk, sql::JoinType::kInner,
                               nullptr, 1, threads);
      SetJoinBloomForTest(1);
      auto fil = HashJoinPairs(probe, build, lk, rk, sql::JoinType::kInner,
                               nullptr, 1, threads);
      SetJoinBloomForTest(-1);
      const bool same = ref.ok() && fil.ok() &&
                        ref.value().lrows() == fil.value().lrows() &&
                        ref.value().rrows() == fil.value().rrows();
      if (!same || pairs_off != pairs_on) all_ok = false;
      std::printf("%-18s %-6d %12.2f %12.2f %8.2fx  %zu %s\n", hc.label,
                  threads, off_ms, on_ms, off_ms / on_ms, pairs_off,
                  same && pairs_off == pairs_on ? "ok" : "MISMATCH");
      const std::string op = std::string("join probe ") + hc.label;
      BenchJsonRecord(op, "bloom=off", off_ms, threads);
      BenchJsonRecord(op, "bloom=on", on_ms, threads);
    }
  }
  return all_ok;
}

}  // namespace
}  // namespace vdb::engine

int main(int argc, char** argv) {
  vdb::bench::BenchJsonInit("join", argc, argv);
  const bool smoke = vdb::bench::HasFlag(argc, argv, "--smoke");

  const bool bloom_ok = vdb::engine::RunBloomSection(smoke);

  if (!smoke) {
    // Drop our flags before Google Benchmark sees (and rejects) them.
    std::vector<char*> kept;
    for (int i = 0; i < argc; ++i) {
      const std::string a = argv[i];
      if (a != "--json" && a != "--smoke") kept.push_back(argv[i]);
    }
    int kept_argc = static_cast<int>(kept.size());
    benchmark::Initialize(&kept_argc, kept.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  vdb::bench::BenchJsonWrite();
  return bloom_ok ? 0 : 1;
}
