// Micro-benchmark: row-at-a-time vs. batch (vectorized) predicate
// evaluation on a 1M-row table, plus the morsel-driven parallel scan-and-
// aggregate scale-up at 1/2/4/8 threads. Acceptance bars: >= 3x batch vs
// row throughput on the numeric filter, and >= 2.5x at 4 threads vs 1
// thread on the filter+sum workload (on hardware with >= 4 cores).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "engine/database.h"
#include "engine/expr_eval.h"
#include "engine/table.h"
#include "engine/vector_eval.h"
#include "sql/ast.h"
#include "sql/printer.h"

namespace vdb::bench {
namespace {

using engine::Batch;
using engine::Column;
using engine::EvalPredicate;
using engine::EvalPredicateBatch;
using engine::RowCtx;
using engine::SelVector;
using engine::Table;
using engine::TablePtr;
using sql::BinaryOp;
using sql::Expr;

constexpr size_t kRows = 1'000'000;
constexpr int kReps = 5;

TablePtr BuildTable(Rng* rng) {
  std::vector<int64_t> ids(kRows), qtys(kRows);
  std::vector<double> prices(kRows);
  for (size_t r = 0; r < kRows; ++r) {
    ids[r] = static_cast<int64_t>(r);
    qtys[r] = rng->NextInRange(0, 99);
    prices[r] = rng->NextDouble() * 1000.0;
  }
  auto t = std::make_shared<Table>();
  t->AddColumn("id", Column::FromData(TypeId::kInt64, std::move(ids), {}, {},
                                      {}));
  t->AddColumn("price", Column::FromData(TypeId::kDouble, {},
                                         std::move(prices), {}, {}));
  t->AddColumn("qty", Column::FromData(TypeId::kInt64, std::move(qtys), {},
                                       {}, {}));
  return t;
}

Expr::Ptr Ref(const Table& t, const std::string& name) {
  auto e = sql::MakeColumnRef("", name);
  e->bound_column = t.ColumnIndex(name);
  return e;
}

struct Case {
  const char* label;
  Expr::Ptr pred;
};

void RunCase(const Table& t, const Expr& pred, const char* label) {
  size_t row_hits = 0, batch_hits = 0;

  double row_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    row_ms = std::min(row_ms, TimeMs([&] {
      SelVector sel;
      for (size_t r = 0; r < t.num_rows(); ++r) {
        RowCtx ctx{&t, r, /*rand_seed=*/1};
        auto pass = EvalPredicate(pred, ctx);
        if (pass.ok() && pass.value()) sel.push_back(static_cast<uint32_t>(r));
      }
      row_hits = sel.size();
    }));
  }

  double batch_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    batch_ms = std::min(batch_ms, TimeMs([&] {
      SelVector sel;
      Batch batch{&t, nullptr, /*rand_seed=*/1};
      (void)EvalPredicateBatch(pred, batch, &sel);
      batch_hits = sel.size();
    }));
  }

  const double row_rps = static_cast<double>(kRows) / (row_ms / 1000.0);
  const double batch_rps = static_cast<double>(kRows) / (batch_ms / 1000.0);
  std::printf("%-34s %10.1f %12.2fM %10.2f %12.2fM %8.1fx  %s\n", label,
              row_ms, row_rps / 1e6, batch_ms, batch_rps / 1e6,
              row_ms / batch_ms,
              row_hits == batch_hits ? "ok" : "MISMATCH");
}

/// Gather cost: eager vs late materialization on a 1M-row filter→project
/// path over a wide table (id, price, qty + 4 payload columns). Eager
/// gathers the WHERE survivors into a fresh full-width table and projects
/// from it — the pre-RowView pipeline, which pays for payload columns the
/// query never outputs. Late carries a (table, SelVector) RowView and the
/// projection's per-column gathers are the only materialization.
void RunGatherCost(Rng* rng) {
  const size_t rows = kRows;
  std::vector<int64_t> ids(rows), qtys(rows);
  std::vector<double> prices(rows), p1(rows), p2(rows), p3(rows);
  std::vector<std::string> tags(rows);
  static const char* kTags[] = {"alpha", "bravo", "charlie", "delta"};
  for (size_t r = 0; r < rows; ++r) {
    ids[r] = static_cast<int64_t>(r);
    qtys[r] = rng->NextInRange(0, 99);
    prices[r] = rng->NextDouble() * 1000.0;
    p1[r] = rng->NextDouble();
    p2[r] = rng->NextDouble();
    p3[r] = rng->NextDouble();
    tags[r] = kTags[r % 4];
  }
  auto t = std::make_shared<Table>();
  t->AddColumn("id", Column::FromData(TypeId::kInt64, std::move(ids), {}, {}, {}));
  t->AddColumn("price",
               Column::FromData(TypeId::kDouble, {}, std::move(prices), {}, {}));
  t->AddColumn("qty", Column::FromData(TypeId::kInt64, std::move(qtys), {}, {}, {}));
  t->AddColumn("pay1", Column::FromData(TypeId::kDouble, {}, std::move(p1), {}, {}));
  t->AddColumn("pay2", Column::FromData(TypeId::kDouble, {}, std::move(p2), {}, {}));
  t->AddColumn("pay3", Column::FromData(TypeId::kDouble, {}, std::move(p3), {}, {}));
  t->AddColumn("tag",
               Column::FromData(TypeId::kString, {}, {}, std::move(tags), {}));

  auto pred = sql::MakeBinary(BinaryOp::kGt, Ref(*t, "price"),
                              sql::MakeDoubleLit(500.0));
  auto out_expr = sql::MakeBinary(
      BinaryOp::kMul, Ref(*t, "price"),
      sql::MakeBinary(BinaryOp::kAdd, Ref(*t, "qty"), sql::MakeIntLit(1)));

  SelVector sel;
  Batch batch{t.get(), nullptr, /*rand_seed=*/3};
  (void)EvalPredicateBatch(*pred, batch, &sel);

  size_t eager_rows = 0, late_rows = 0;
  double eager_ms = 1e300, late_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    eager_ms = std::min(eager_ms, TimeMs([&] {
      // Full-width intermediate gather (all 7 columns), then project.
      auto filtered = t->CloneSchema();
      filtered->AppendSelected(*t, sel);
      auto out = std::make_shared<Table>();
      out->AddColumn("id", filtered->column(0));
      Batch fb{filtered.get(), nullptr, /*rand_seed=*/3};
      auto col = EvalExprBatch(*out_expr, fb);
      if (col.ok()) out->AddColumn("e", std::move(col).ValueOrDie());
      eager_rows = out->num_rows();
    }));
    late_ms = std::min(late_ms, TimeMs([&] {
      // View pipeline: the projection's column gathers are the only
      // materialization; payload columns are never touched.
      auto view = engine::RowView::Select(t, sel);
      if (!view.ok()) return;
      auto out = std::make_shared<Table>();
      out->AddColumn("id", view.value().GatherColumn(t->column(0)));
      auto col = engine::EvalExprView(*out_expr, view.value(), /*rand_seed=*/3, 1);
      if (col.ok()) out->AddColumn("e", std::move(col).ValueOrDie());
      late_rows = out->num_rows();
    }));
  }

  PrintHeader(
      "micro: gather cost, eager vs late materialization (1M-row wide-table "
      "filter->project, ~50% selectivity)");
  std::printf("%-34s %10s %13s %9s\n", "pipeline", "ms", "rows/s", "speedup");
  std::printf("%-34s %10.1f %12.2fM %9s\n", "eager (full-width gather)",
              eager_ms, static_cast<double>(rows) / (eager_ms / 1000.0) / 1e6,
              "1.0x");
  std::printf("%-34s %10.1f %12.2fM %8.1fx  %s\n", "late (RowView, gather once)",
              late_ms, static_cast<double>(rows) / (late_ms / 1000.0) / 1e6,
              eager_ms / late_ms,
              eager_rows == late_rows ? "ok" : "MISMATCH");
}

/// Thread scale-up on the engine's full execution path: parse, morsel-
/// parallel WHERE, column-parallel materialization, parallel partial
/// aggregation with morsel-order merge.
void RunThreadSweep(TablePtr t) {
  engine::Database db(7);
  if (!db.RegisterTable("t", t).ok()) return;
  const char* sql =
      "select sum(price) as sp, sum(price * qty) as spq, count(*) as c "
      "from t where price > 500 and qty < 50";

  PrintHeader(
      "micro: morsel-parallel filter+sum scale-up (1M rows, full engine "
      "path)");
  std::printf("%-10s %10s %13s %10s  %s\n", "threads", "ms", "rows/s",
              "scaleup", "vs 1-thread result");

  double base_ms = 0.0;
  double base_sum = 0.0;
  int64_t base_count = 0;
  for (int threads : {1, 2, 4, 8}) {
    db.set_num_threads(threads);
    double ms = 1e300;
    double sum = 0.0;
    int64_t count = 0;
    bool all_ok = true;
    for (int rep = 0; rep < kReps; ++rep) {
      ms = std::min(ms, TimeMs([&] {
        auto rs = db.Execute(sql);
        if (rs.ok()) {
          sum = rs.value().GetDouble(0, 0);
          count = rs.value().Get(0, 2).AsInt();
        } else {
          all_ok = false;
        }
      }));
    }
    if (!all_ok) {
      std::printf("%-10d ERROR: query failed\n", threads);
      continue;
    }
    if (threads == 1) {
      base_ms = ms;
      base_sum = sum;
      base_count = count;
    }
    const bool same =
        count == base_count &&
        std::abs(sum - base_sum) <= 1e-9 * std::max(1.0, std::abs(base_sum));
    std::printf("%-10d %10.1f %12.2fM %9.2fx  %s\n", threads, ms,
                static_cast<double>(kRows) / (ms / 1000.0) / 1e6, base_ms / ms,
                same ? "ok" : "MISMATCH");
  }
}

}  // namespace
}  // namespace vdb::bench

int main() {
  using namespace vdb;
  using namespace vdb::bench;
  using sql::BinaryOp;

  Rng rng(20260729);
  auto t = BuildTable(&rng);

  PrintHeader("micro: predicate evaluation, row-at-a-time vs. batch (1M rows)");
  std::printf("%-34s %10s %13s %10s %13s %9s\n", "predicate", "row ms",
              "row rows/s", "batch ms", "batch rows/s", "speedup");

  {
    auto pred = sql::MakeBinary(
        BinaryOp::kAnd,
        sql::MakeBinary(BinaryOp::kGt, Ref(*t, "price"),
                        sql::MakeDoubleLit(500.0)),
        sql::MakeBinary(BinaryOp::kLt, Ref(*t, "qty"), sql::MakeIntLit(50)));
    RunCase(*t, *pred, "price > 500 and qty < 50");
  }
  {
    auto pred = sql::MakeBinary(BinaryOp::kGt, Ref(*t, "price"),
                                sql::MakeDoubleLit(900.0));
    RunCase(*t, *pred, "price > 900");
  }
  {
    auto pred = sql::MakeBinary(
        BinaryOp::kLt,
        sql::MakeBinary(BinaryOp::kMul, Ref(*t, "price"),
                        sql::MakeBinary(BinaryOp::kAdd, Ref(*t, "qty"),
                                        sql::MakeIntLit(1))),
        sql::MakeDoubleLit(20000.0));
    RunCase(*t, *pred, "price * (qty + 1) < 20000");
  }
  {
    auto in = std::make_unique<sql::Expr>(sql::ExprKind::kInList);
    in->args.push_back(Ref(*t, "qty"));
    in->args.push_back(sql::MakeIntLit(1));
    in->args.push_back(sql::MakeIntLit(17));
    in->args.push_back(sql::MakeIntLit(42));
    RunCase(*t, *in, "qty in (1, 17, 42)");
  }

  RunGatherCost(&rng);
  RunThreadSweep(t);
  return 0;
}
