// Micro-benchmark: row-at-a-time vs. batch (vectorized) predicate
// evaluation on a 1M-row table. The acceptance bar for the vectorized
// execution pipeline is >= 3x throughput on the numeric filter.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "engine/expr_eval.h"
#include "engine/table.h"
#include "engine/vector_eval.h"
#include "sql/ast.h"
#include "sql/printer.h"

namespace vdb::bench {
namespace {

using engine::Batch;
using engine::Column;
using engine::EvalPredicate;
using engine::EvalPredicateBatch;
using engine::RowCtx;
using engine::SelVector;
using engine::Table;
using engine::TablePtr;
using sql::BinaryOp;
using sql::Expr;

constexpr size_t kRows = 1'000'000;
constexpr int kReps = 5;

TablePtr BuildTable(Rng* rng) {
  std::vector<int64_t> ids(kRows), qtys(kRows);
  std::vector<double> prices(kRows);
  for (size_t r = 0; r < kRows; ++r) {
    ids[r] = static_cast<int64_t>(r);
    qtys[r] = rng->NextInRange(0, 99);
    prices[r] = rng->NextDouble() * 1000.0;
  }
  auto t = std::make_shared<Table>();
  t->AddColumn("id", Column::FromData(TypeId::kInt64, std::move(ids), {}, {},
                                      {}));
  t->AddColumn("price", Column::FromData(TypeId::kDouble, {},
                                         std::move(prices), {}, {}));
  t->AddColumn("qty", Column::FromData(TypeId::kInt64, std::move(qtys), {},
                                       {}, {}));
  return t;
}

Expr::Ptr Ref(const Table& t, const std::string& name) {
  auto e = sql::MakeColumnRef("", name);
  e->bound_column = t.ColumnIndex(name);
  return e;
}

struct Case {
  const char* label;
  Expr::Ptr pred;
};

void RunCase(const Table& t, const Expr& pred, const char* label) {
  Rng rng(1);
  size_t row_hits = 0, batch_hits = 0;

  double row_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    row_ms = std::min(row_ms, TimeMs([&] {
      SelVector sel;
      for (size_t r = 0; r < t.num_rows(); ++r) {
        RowCtx ctx{&t, r, &rng};
        auto pass = EvalPredicate(pred, ctx);
        if (pass.ok() && pass.value()) sel.push_back(static_cast<uint32_t>(r));
      }
      row_hits = sel.size();
    }));
  }

  double batch_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    batch_ms = std::min(batch_ms, TimeMs([&] {
      SelVector sel;
      Batch batch{&t, nullptr, &rng};
      (void)EvalPredicateBatch(pred, batch, &sel);
      batch_hits = sel.size();
    }));
  }

  const double row_rps = static_cast<double>(kRows) / (row_ms / 1000.0);
  const double batch_rps = static_cast<double>(kRows) / (batch_ms / 1000.0);
  std::printf("%-34s %10.1f %12.2fM %10.2f %12.2fM %8.1fx  %s\n", label,
              row_ms, row_rps / 1e6, batch_ms, batch_rps / 1e6,
              row_ms / batch_ms,
              row_hits == batch_hits ? "ok" : "MISMATCH");
}

}  // namespace
}  // namespace vdb::bench

int main() {
  using namespace vdb;
  using namespace vdb::bench;
  using sql::BinaryOp;

  Rng rng(20260729);
  auto t = BuildTable(&rng);

  PrintHeader("micro: predicate evaluation, row-at-a-time vs. batch (1M rows)");
  std::printf("%-34s %10s %13s %10s %13s %9s\n", "predicate", "row ms",
              "row rows/s", "batch ms", "batch rows/s", "speedup");

  {
    auto pred = sql::MakeBinary(
        BinaryOp::kAnd,
        sql::MakeBinary(BinaryOp::kGt, Ref(*t, "price"),
                        sql::MakeDoubleLit(500.0)),
        sql::MakeBinary(BinaryOp::kLt, Ref(*t, "qty"), sql::MakeIntLit(50)));
    RunCase(*t, *pred, "price > 500 and qty < 50");
  }
  {
    auto pred = sql::MakeBinary(BinaryOp::kGt, Ref(*t, "price"),
                                sql::MakeDoubleLit(900.0));
    RunCase(*t, *pred, "price > 900");
  }
  {
    auto pred = sql::MakeBinary(
        BinaryOp::kLt,
        sql::MakeBinary(BinaryOp::kMul, Ref(*t, "price"),
                        sql::MakeBinary(BinaryOp::kAdd, Ref(*t, "qty"),
                                        sql::MakeIntLit(1))),
        sql::MakeDoubleLit(20000.0));
    RunCase(*t, *pred, "price * (qty + 1) < 20000");
  }
  {
    auto in = std::make_unique<sql::Expr>(sql::ExprKind::kInList);
    in->args.push_back(Ref(*t, "qty"));
    in->args.push_back(sql::MakeIntLit(1));
    in->args.push_back(sql::MakeIntLit(17));
    in->args.push_back(sql::MakeIntLit(42));
    RunCase(*t, *in, "qty in (1, 17, 42)");
  }
  return 0;
}
