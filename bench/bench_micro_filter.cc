// Micro-benchmark: row-at-a-time vs. batch (vectorized) predicate
// evaluation on a 1M-row table, plus the morsel-driven parallel scan-and-
// aggregate scale-up at 1/2/4/8 threads. Acceptance bars: >= 3x batch vs
// row throughput on the numeric filter, and >= 2.5x at 4 threads vs 1
// thread on the filter+sum workload (on hardware with >= 4 cores).

#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "common/random.h"
#include "engine/database.h"
#include "engine/expr_eval.h"
#include "engine/kernels/bitmap.h"
#include "engine/kernels/kernels.h"
#include "engine/table.h"
#include "engine/vector_eval.h"
#include "sql/ast.h"
#include "sql/printer.h"

namespace vdb::bench {
namespace {

using engine::Batch;
using engine::Column;
using engine::EvalPredicate;
using engine::EvalPredicateBatch;
using engine::RowCtx;
using engine::SelVector;
using engine::Table;
using engine::TablePtr;
using sql::BinaryOp;
using sql::Expr;

constexpr size_t kRows = 1'000'000;
constexpr int kReps = 5;

TablePtr BuildTable(Rng* rng) {
  std::vector<int64_t> ids(kRows), qtys(kRows);
  std::vector<double> prices(kRows);
  for (size_t r = 0; r < kRows; ++r) {
    ids[r] = static_cast<int64_t>(r);
    qtys[r] = rng->NextInRange(0, 99);
    prices[r] = rng->NextDouble() * 1000.0;
  }
  auto t = std::make_shared<Table>();
  t->AddColumn("id", Column::FromData(TypeId::kInt64, std::move(ids), {}, {},
                                      {}));
  t->AddColumn("price", Column::FromData(TypeId::kDouble, {},
                                         std::move(prices), {}, {}));
  t->AddColumn("qty", Column::FromData(TypeId::kInt64, std::move(qtys), {},
                                       {}, {}));
  return t;
}

Expr::Ptr Ref(const Table& t, const std::string& name) {
  auto e = sql::MakeColumnRef("", name);
  e->bound_column = t.ColumnIndex(name);
  return e;
}

struct Case {
  const char* label;
  Expr::Ptr pred;
};

void RunCase(const Table& t, const Expr& pred, const char* label) {
  size_t row_hits = 0, batch_hits = 0;

  double row_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    row_ms = std::min(row_ms, TimeMs([&] {
      SelVector sel;
      for (size_t r = 0; r < t.num_rows(); ++r) {
        RowCtx ctx{&t, r, /*rand_seed=*/1};
        auto pass = EvalPredicate(pred, ctx);
        if (pass.ok() && pass.value()) sel.push_back(static_cast<uint32_t>(r));
      }
      row_hits = sel.size();
    }));
  }

  double batch_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    batch_ms = std::min(batch_ms, TimeMs([&] {
      SelVector sel;
      Batch batch{&t, nullptr, /*rand_seed=*/1};
      (void)EvalPredicateBatch(pred, batch, &sel);
      batch_hits = sel.size();
    }));
  }

  BenchJsonRecord(std::string("predicate: ") + label, "row", row_ms, 1);
  BenchJsonRecord(std::string("predicate: ") + label, "batch", batch_ms, 1);
  const double row_rps = static_cast<double>(kRows) / (row_ms / 1000.0);
  const double batch_rps = static_cast<double>(kRows) / (batch_ms / 1000.0);
  std::printf("%-34s %10.1f %12.2fM %10.2f %12.2fM %8.1fx  %s\n", label,
              row_ms, row_rps / 1e6, batch_ms, batch_rps / 1e6,
              row_ms / batch_ms,
              row_hits == batch_hits ? "ok" : "MISMATCH");
}

/// Gather cost: eager vs late materialization on a 1M-row filter→project
/// path over a wide table (id, price, qty + 4 payload columns). Eager
/// gathers the WHERE survivors into a fresh full-width table and projects
/// from it — the pre-RowView pipeline, which pays for payload columns the
/// query never outputs. Late carries a (table, SelVector) RowView and the
/// projection's per-column gathers are the only materialization.
void RunGatherCost(Rng* rng) {
  const size_t rows = kRows;
  std::vector<int64_t> ids(rows), qtys(rows);
  std::vector<double> prices(rows), p1(rows), p2(rows), p3(rows);
  std::vector<std::string> tags(rows);
  static const char* kTags[] = {"alpha", "bravo", "charlie", "delta"};
  for (size_t r = 0; r < rows; ++r) {
    ids[r] = static_cast<int64_t>(r);
    qtys[r] = rng->NextInRange(0, 99);
    prices[r] = rng->NextDouble() * 1000.0;
    p1[r] = rng->NextDouble();
    p2[r] = rng->NextDouble();
    p3[r] = rng->NextDouble();
    tags[r] = kTags[r % 4];
  }
  auto t = std::make_shared<Table>();
  t->AddColumn("id", Column::FromData(TypeId::kInt64, std::move(ids), {}, {}, {}));
  t->AddColumn("price",
               Column::FromData(TypeId::kDouble, {}, std::move(prices), {}, {}));
  t->AddColumn("qty", Column::FromData(TypeId::kInt64, std::move(qtys), {}, {}, {}));
  t->AddColumn("pay1", Column::FromData(TypeId::kDouble, {}, std::move(p1), {}, {}));
  t->AddColumn("pay2", Column::FromData(TypeId::kDouble, {}, std::move(p2), {}, {}));
  t->AddColumn("pay3", Column::FromData(TypeId::kDouble, {}, std::move(p3), {}, {}));
  t->AddColumn("tag",
               Column::FromData(TypeId::kString, {}, {}, std::move(tags), {}));

  auto pred = sql::MakeBinary(BinaryOp::kGt, Ref(*t, "price"),
                              sql::MakeDoubleLit(500.0));
  auto out_expr = sql::MakeBinary(
      BinaryOp::kMul, Ref(*t, "price"),
      sql::MakeBinary(BinaryOp::kAdd, Ref(*t, "qty"), sql::MakeIntLit(1)));

  SelVector sel;
  Batch batch{t.get(), nullptr, /*rand_seed=*/3};
  (void)EvalPredicateBatch(*pred, batch, &sel);

  size_t eager_rows = 0, late_rows = 0;
  double eager_ms = 1e300, late_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    eager_ms = std::min(eager_ms, TimeMs([&] {
      // Full-width intermediate gather (all 7 columns), then project.
      auto filtered = t->CloneSchema();
      filtered->AppendSelected(*t, sel);
      auto out = std::make_shared<Table>();
      out->AddColumn("id", filtered->column(0));
      Batch fb{filtered.get(), nullptr, /*rand_seed=*/3};
      auto col = EvalExprBatch(*out_expr, fb);
      if (col.ok()) out->AddColumn("e", std::move(col).ValueOrDie());
      eager_rows = out->num_rows();
    }));
    late_ms = std::min(late_ms, TimeMs([&] {
      // View pipeline: the projection's column gathers are the only
      // materialization; payload columns are never touched.
      auto view = engine::RowView::Select(t, sel);
      if (!view.ok()) return;
      auto out = std::make_shared<Table>();
      out->AddColumn("id", view.value().GatherColumn(t->column(0)));
      auto col = engine::EvalExprView(*out_expr, view.value(), /*rand_seed=*/3, 1);
      if (col.ok()) out->AddColumn("e", std::move(col).ValueOrDie());
      late_rows = out->num_rows();
    }));
  }

  PrintHeader(
      "micro: gather cost, eager vs late materialization (1M-row wide-table "
      "filter->project, ~50% selectivity)");
  std::printf("%-34s %10s %13s %9s\n", "pipeline", "ms", "rows/s", "speedup");
  std::printf("%-34s %10.1f %12.2fM %9s\n", "eager (full-width gather)",
              eager_ms, static_cast<double>(rows) / (eager_ms / 1000.0) / 1e6,
              "1.0x");
  std::printf("%-34s %10.1f %12.2fM %8.1fx  %s\n", "late (RowView, gather once)",
              late_ms, static_cast<double>(rows) / (late_ms / 1000.0) / 1e6,
              eager_ms / late_ms,
              eager_rows == late_rows ? "ok" : "MISMATCH");
}

/// Dispatch-kernel sweep: the same 1M-row kernel timed at every available
/// SIMD level (SetSimdLevelForTest swaps the dispatch table in place), with
/// a checksum cross-check — the AVX2 lanes must be bit-identical to the
/// scalar reference, so any speedup is pure execution, not semantics.
void RunSimdKernels(Rng* rng) {
  namespace k = engine::kernels;
  const size_t n = kRows;
  std::vector<double> da(n), db(n), dout(n);
  std::vector<int64_t> ia(n), ib(n);
  std::vector<int64_t> iout(n);
  std::vector<uint64_t> h(n);
  for (size_t r = 0; r < n; ++r) {
    da[r] = rng->NextDouble() * 1000.0;
    db[r] = rng->NextDouble() * 1000.0;
    ia[r] = rng->NextInRange(0, 1'000'000);
    ib[r] = rng->NextInRange(0, 1'000'000);
  }
  k::Bitmap bits;
  bits.ResetForOverwrite(n);

  struct KernelCase {
    const char* label;
    std::function<uint64_t()> run;  // returns a checksum
  };
  auto bits_sum = [&]() {
    uint64_t s = 0;
    for (size_t w = 0; w < bits.num_words(); ++w) s += bits.word(w);
    return s;
  };
  std::vector<KernelCase> cases;
  cases.push_back({"cmp_f64_vc: a < 500.0", [&] {
                     k::Ops().cmp_f64_vc(k::CmpOp::kLt, da.data(), 500.0, n,
                                         bits.words());
                     return bits_sum();
                   }});
  cases.push_back({"cmp_i64_vv: a < b", [&] {
                     k::Ops().cmp_i64_vv(k::CmpOp::kLt, ia.data(), ib.data(),
                                         n, bits.words());
                     return bits_sum();
                   }});
  cases.push_back({"arith_f64_vv: a * b", [&] {
                     k::Ops().arith_f64_vv(k::ArithOp::kMul, da.data(),
                                           db.data(), n, dout.data());
                     uint64_t s;
                     std::memcpy(&s, &dout[n - 1], sizeof(s));
                     return s;
                   }});
  cases.push_back({"arith_i64_vc: a + 7", [&] {
                     k::Ops().arith_i64_vc(k::ArithOp::kAdd, ia.data(), 7, n,
                                           iout.data());
                     return static_cast<uint64_t>(iout[n - 1]);
                   }});
  cases.push_back({"rand_f64_seq (CounterRandom)", [&] {
                     k::Ops().rand_f64_seq(/*seed=*/42, /*row0=*/0,
                                           /*site=*/1, n, dout.data());
                     uint64_t s;
                     std::memcpy(&s, &dout[n - 1], sizeof(s));
                     return s;
                   }});
  cases.push_back({"hash_mix_i64 (group/join keys)", [&] {
                     std::fill(h.begin(), h.end(), 0x2545F4914F6CDD1Dull);
                     k::Ops().hash_mix_i64(h.data(), ia.data(), nullptr,
                                           /*null_hash=*/0, n);
                     return h[n - 1];
                   }});

  PrintHeader(
      "micro: dispatch kernels, scalar vs AVX2 (1M rows, identical results "
      "required)");
  std::printf("%-34s %12s %12s %9s  %s\n", "kernel", "scalar ms", "simd ms",
              "speedup", "");
  const bool have_avx2 =
      engine::kernels::DetectedSimdLevel() != k::SimdLevel::kScalar;
  for (auto& c : cases) {
    uint64_t scalar_sum = 0, simd_sum = 0;
    k::SetSimdLevelForTest(k::SimdLevel::kScalar);
    const double scalar_ms = TimeMedianMs(kReps, [&] { scalar_sum = c.run(); });
    BenchJsonRecord(c.label, "scalar", scalar_ms, 1);
    if (!have_avx2) {
      std::printf("%-34s %12.2f %12s %9s  (no AVX2 on this host)\n", c.label,
                  scalar_ms, "-", "-");
      continue;
    }
    k::SetSimdLevelForTest(k::SimdLevel::kAvx2);
    const double simd_ms = TimeMedianMs(kReps, [&] { simd_sum = c.run(); });
    k::SetSimdLevelForTest(k::DetectedSimdLevel());
    BenchJsonRecord(c.label, "avx2", simd_ms, 1);
    std::printf("%-34s %12.2f %12.2f %8.1fx  %s\n", c.label, scalar_ms,
                simd_ms, scalar_ms / simd_ms,
                scalar_sum == simd_sum ? "ok" : "MISMATCH");
  }
  k::SetSimdLevelForTest(k::DetectedSimdLevel());
}

/// Thread scale-up on the engine's full execution path: parse, morsel-
/// parallel WHERE, column-parallel materialization, parallel partial
/// aggregation with morsel-order merge.
void RunThreadSweep(TablePtr t) {
  engine::Database db(7);
  if (!db.RegisterTable("t", t).ok()) return;
  const char* sql =
      "select sum(price) as sp, sum(price * qty) as spq, count(*) as c "
      "from t where price > 500 and qty < 50";

  PrintHeader(
      "micro: morsel-parallel filter+sum scale-up (1M rows, full engine "
      "path)");
  std::printf("%-10s %10s %13s %10s  %s\n", "threads", "ms", "rows/s",
              "scaleup", "vs 1-thread result");

  double base_ms = 0.0;
  double base_sum = 0.0;
  int64_t base_count = 0;
  for (int threads : {1, 2, 4, 8}) {
    db.set_num_threads(threads);
    double ms = 1e300;
    double sum = 0.0;
    int64_t count = 0;
    bool all_ok = true;
    for (int rep = 0; rep < kReps; ++rep) {
      ms = std::min(ms, TimeMs([&] {
        auto rs = db.Execute(sql);
        if (rs.ok()) {
          sum = rs.value().GetDouble(0, 0);
          count = rs.value().Get(0, 2).AsInt();
        } else {
          all_ok = false;
        }
      }));
    }
    if (!all_ok) {
      std::printf("%-10d ERROR: query failed\n", threads);
      continue;
    }
    if (threads == 1) {
      base_ms = ms;
      base_sum = sum;
      base_count = count;
    }
    const bool same =
        count == base_count &&
        std::abs(sum - base_sum) <= 1e-9 * std::max(1.0, std::abs(base_sum));
    std::printf("%-10d %10.1f %12.2fM %9.2fx  %s\n", threads, ms,
                static_cast<double>(kRows) / (ms / 1000.0) / 1e6, base_ms / ms,
                same ? "ok" : "MISMATCH");
  }
}

}  // namespace
}  // namespace vdb::bench

int main(int argc, char** argv) {
  using namespace vdb;
  using namespace vdb::bench;
  using sql::BinaryOp;

  BenchJsonInit("micro_filter", argc, argv);
  Rng rng(20260729);
  auto t = BuildTable(&rng);

  PrintHeader("micro: predicate evaluation, row-at-a-time vs. batch (1M rows)");
  std::printf("%-34s %10s %13s %10s %13s %9s\n", "predicate", "row ms",
              "row rows/s", "batch ms", "batch rows/s", "speedup");

  {
    auto pred = sql::MakeBinary(
        BinaryOp::kAnd,
        sql::MakeBinary(BinaryOp::kGt, Ref(*t, "price"),
                        sql::MakeDoubleLit(500.0)),
        sql::MakeBinary(BinaryOp::kLt, Ref(*t, "qty"), sql::MakeIntLit(50)));
    RunCase(*t, *pred, "price > 500 and qty < 50");
  }
  {
    auto pred = sql::MakeBinary(BinaryOp::kGt, Ref(*t, "price"),
                                sql::MakeDoubleLit(900.0));
    RunCase(*t, *pred, "price > 900");
  }
  {
    auto pred = sql::MakeBinary(
        BinaryOp::kLt,
        sql::MakeBinary(BinaryOp::kMul, Ref(*t, "price"),
                        sql::MakeBinary(BinaryOp::kAdd, Ref(*t, "qty"),
                                        sql::MakeIntLit(1))),
        sql::MakeDoubleLit(20000.0));
    RunCase(*t, *pred, "price * (qty + 1) < 20000");
  }
  {
    auto in = std::make_unique<sql::Expr>(sql::ExprKind::kInList);
    in->args.push_back(Ref(*t, "qty"));
    in->args.push_back(sql::MakeIntLit(1));
    in->args.push_back(sql::MakeIntLit(17));
    in->args.push_back(sql::MakeIntLit(42));
    RunCase(*t, *in, "qty in (1, 17, 42)");
  }

  RunSimdKernels(&rng);
  RunGatherCost(&rng);
  RunThreadSweep(t);
  BenchJsonWrite();
  return 0;
}
