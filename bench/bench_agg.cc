// Flat aggregation sink benchmark: the open-addressing group table + SoA
// scatter-accumulate path (engine/agg_table.h, FlatAggregator) against the
// per-group accumulator-object reference sink, swept across group counts
// and thread counts.
//
// Two shapes:
//   - group-count sweep: GROUP BY g, sum+count over 10 / 1K / 100K / 1M
//     distinct groups — from a handful of cache-resident accumulator lanes
//     to group tables far beyond LLC, where probe misses dominate.
//   - sid shape: GROUP BY (g10, sid) over a derived table assigning a
//     row-addressed `1 + floor(rand() * 100)` subsample id — the AQP hot
//     path the VerdictDB rewriter emits (Figure 7's inner loop), with its
//     Double sid key and 1000-group (10 x 100) product.
//
// Both sinks produce bit-identical results (pinned by FlatAggTest); only
// the execution strategy differs. --smoke shrinks rows/reps for the
// sanitizer CI jobs; --json writes BENCH_agg.json.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "engine/planner.h"

namespace {

using namespace vdb;
using engine::Column;
using engine::Database;
using engine::Table;
using engine::TablePtr;

/// Rows with `g` uniform over [0, groups) in random order plus a double
/// measure; the same data for every sink and thread count.
TablePtr BuildTable(size_t rows, size_t groups, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> g(rows);
  std::vector<double> v(rows);
  for (size_t r = 0; r < rows; ++r) {
    g[r] = static_cast<int64_t>(rng.NextBounded(groups));
    // Multiples of 0.25: partial-sum merge order cannot perturb results.
    v[r] = static_cast<double>(rng.NextInRange(0, 4000)) * 0.25;
  }
  auto t = std::make_shared<Table>();
  t->AddColumn("g", Column::FromData(TypeId::kInt64, std::move(g), {}, {}, {}));
  t->AddColumn("v",
               Column::FromData(TypeId::kDouble, {}, std::move(v), {}, {}));
  return t;
}

struct SweepPoint {
  size_t groups;
  const char* label;
};

void RunCase(Database* db, const std::string& sql, const std::string& op,
             size_t rows, int reps) {
  // Reference sink first (serial; the object path has no parallel merge for
  // comparison parity — flat is what the planner actually runs).
  db->set_num_threads(1);
  (void)db->Execute(sql);  // warm-up: thread pool, faults, allocator
  engine::SetFlatAggSinkForTest(false);
  const double ref =
      bench::TimeMedianMs(reps, [&] { (void)db->Execute(sql); });
  engine::SetFlatAggSinkForTest(true);
  std::printf("%-34s %10.1f %11.2fM %9s\n", "reference (object sink) @1",
              ref, static_cast<double>(rows) / ref / 1e3, "1.00x");
  bench::BenchJsonRecord(op, "reference", ref, 1);

  for (int threads : {1, 2, 4, 8}) {
    db->set_num_threads(threads);
    const double ms =
        bench::TimeMedianMs(reps, [&] { (void)db->Execute(sql); });
    char label[64];
    std::snprintf(label, sizeof(label), "flat sink @%d", threads);
    std::printf("%-34s %10.1f %11.2fM %8.2fx\n", label, ms,
                static_cast<double>(rows) / ms / 1e3, ref / ms);
    bench::BenchJsonRecord(op, "flat", ms, threads);
  }
  db->set_num_threads(1);
}

void RunGroupSweep(bool smoke) {
  const size_t rows = smoke ? 100'000 : 1'000'000;
  const int reps = smoke ? 1 : 5;
  const std::vector<SweepPoint> points =
      smoke ? std::vector<SweepPoint>{{10, "10"}, {1'000, "1K"}}
            : std::vector<SweepPoint>{{10, "10"},
                                      {1'000, "1K"},
                                      {100'000, "100K"},
                                      {1'000'000, "1M"}};
  for (const SweepPoint& p : points) {
    std::printf("\n== GROUP BY g: %zu rows, %s groups ==\n", rows, p.label);
    std::printf("%-34s %10s %12s %10s\n", "sink", "ms", "rows/s", "speedup");
    Database db(4242);
    if (!db.RegisterTable("t", BuildTable(rows, p.groups, 17)).ok()) return;
    RunCase(&db, "select g, sum(v) as s, count(*) as c from t group by g",
            std::string("group by g (") + p.label + " groups)", rows, reps);
  }
}

void RunSidShape(bool smoke) {
  const size_t rows = smoke ? 100'000 : 1'000'000;
  const int reps = smoke ? 1 : 5;
  std::printf("\n== GROUP BY (g10, sid): %zu rows, b = 100 ==\n", rows);
  std::printf("%-34s %10s %12s %10s\n", "sink", "ms", "rows/s", "speedup");
  Database db(4242);
  if (!db.RegisterTable("t", BuildTable(rows, 10, 23)).ok()) return;
  RunCase(&db,
          "select g, sid, sum(v) as e, count(*) as ss from "
          "(select *, 1 + floor(rand() * 100) as sid from t) as d "
          "group by g, sid",
          "group by (g10, sid)", rows, reps);
}

}  // namespace

int main(int argc, char** argv) {
  vdb::bench::BenchJsonInit("agg", argc, argv);
  const bool smoke = vdb::bench::HasFlag(argc, argv, "--smoke");
  RunGroupSweep(smoke);
  RunSidShape(smoke);
  vdb::bench::BenchJsonWrite();
  return 0;
}
